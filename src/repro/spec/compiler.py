"""Lowering workflow specs to executable jobs.

``compile_spec`` is deliberately thin: a spec lowers to the same
:class:`~repro.core.job.Job` the hand-written factories produced, and from
there flows through the *unchanged* orchestrator/decomposer/planner
pipeline.  That is what makes the compile differentially checkable — for
every shipped workload, the spec-compiled job is byte-identical (plan and
trace) to the legacy factory's job.

Beyond the structural validation the IR performs, compilation adds the one
check that needs the orchestrator: a *decomposition cross-check* proving
the declared stages and edges survive lowering (the orchestrator produces
every declared stage, and every declared edge is realised as a dataflow
dependency).  The check runs once per spec digest and is memoized, so
registry factories can compile per-arrival without re-deriving it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.job import Job
from repro.llm.orchestrator_llm import DecomposedTask, OrchestratorLLM
from repro.spec.ir import SpecError, SpecIssue, WorkflowSpec

#: Decomposition cross-check verdicts memoized by spec digest: ``True`` for
#: a passed check, otherwise the issue tuple to re-raise.
_CHECKED: Dict[str, object] = {}

#: Decomposed stage plans memoized by spec digest (shared by the cross-check
#: and the CLI preview so one validation decomposes once, not twice).
_PREVIEWS: Dict[str, List[DecomposedTask]] = {}

#: FIFO bound on both memo tables; far above any realistic spec population.
_MEMO_MAX = 1024


def _remember(table: Dict[str, object], digest: str, value) -> None:
    if len(table) >= _MEMO_MAX:
        table.pop(next(iter(table)))
    table[digest] = value

#: Shared orchestrator used for previews/cross-checks (stateless per call).
_PREVIEW_LLM: Optional[OrchestratorLLM] = None


def _preview_llm() -> OrchestratorLLM:
    global _PREVIEW_LLM
    if _PREVIEW_LLM is None:
        _PREVIEW_LLM = OrchestratorLLM()
    return _PREVIEW_LLM


def materialize_inputs(spec: WorkflowSpec) -> List[object]:
    """Materialize the spec's declared input source into concrete payloads.

    Every non-inline source is a deterministic generator, so two holders of
    the same spec see identical inputs (the capture/replay property).
    """
    source = spec.inputs.source
    count = spec.inputs.count
    if source == "none":
        return []
    if source == "inline":
        return list(spec.inputs.items)
    if source == "videos":
        from repro.workloads.video import generate_videos, paper_videos

        return list(paper_videos() if count is None else generate_videos(count=count))
    if source == "posts":
        from repro.workloads.posts import generate_posts

        return generate_posts() if count is None else generate_posts(count=count)
    if source == "documents":
        from repro.workloads.documents import generate_documents

        return generate_documents() if count is None else generate_documents(count=count)
    raise SpecError(
        [
            SpecIssue(
                code="unknown-input-source",
                message=f"unknown input source {source!r}",
            )
        ]
    )


def preview_stages(spec: WorkflowSpec) -> List[DecomposedTask]:
    """The full stage plan the orchestrator derives from this spec.

    Includes both the declared stages and any the orchestrator adds on its
    own (e.g. the summarise -> embed -> index retrieval path behind a final
    answer).  Used by ``python -m repro validate`` to show what a spec
    compiles to without running anything.  Memoized per content digest, so
    validation's cross-check and the printed plan share one decomposition.
    """
    digest = spec.digest()
    cached = _PREVIEWS.get(digest)
    if cached is None:
        cached, _trace = _preview_llm().decompose(
            description=spec.description,
            task_hints=spec.task_hints(),
        )
        _remember(_PREVIEWS, digest, cached)
    return list(cached)


def _decomposition_issues(spec: WorkflowSpec) -> List[SpecIssue]:
    """Check the declared DAG survives lowering through the orchestrator."""
    issues: List[SpecIssue] = []
    try:
        stages = preview_stages(spec)
    except ValueError as error:
        return [
            SpecIssue(
                code="undecomposable",
                message=f"the orchestrator cannot decompose this spec: {error}",
            )
        ]
    produced = {stage.interface: stage for stage in stages}
    # Transitive dependency closure over the decomposed stage DAG.
    closure: Dict[str, set] = {}
    for stage in stages:  # stages arrive producers-first
        deps = set()
        for upstream in stage.depends_on:
            deps.add(upstream)
            deps.update(closure.get(upstream, set()))
        closure[stage.name] = deps
    for declared in spec.stages:
        if declared.interface not in produced:
            issues.append(
                SpecIssue(
                    code="dropped-stage",
                    message=f"the orchestrator derives no {declared.interface.value!r} "
                    "stage from this spec; give the stage a prompt so it is "
                    "hinted explicitly",
                    stage=declared.name,
                )
            )
    for declared in spec.stages:
        if declared.interface not in produced:
            continue
        for upstream_name in declared.after:
            upstream = spec.stage(upstream_name)
            if upstream.interface not in produced:
                continue  # already reported as dropped
            realised = closure.get(declared.interface.value, set())
            if upstream.interface.value not in realised:
                issues.append(
                    SpecIssue(
                        code="unrealizable-edge",
                        message=f"declared edge {upstream_name!r} -> "
                        f"{declared.name!r} is not realised by the "
                        "orchestrator's dataflow wiring",
                        stage=declared.name,
                    )
                )
    return issues


def spec_issues(spec: WorkflowSpec) -> List[SpecIssue]:
    """Every finding :func:`check_spec` would raise, without raising.

    Structural validation first; when that is clean, the decomposition
    cross-check too — so a spec this reports clean really does compile.
    """
    issues = spec.issues()
    if issues:
        return issues
    return _decomposition_issues(spec)


def check_spec(spec: WorkflowSpec) -> None:
    """Eager validation: structural checks plus the decomposition cross-check.

    Raises :class:`SpecError` with every finding.  Memoized per spec digest,
    so per-arrival compiles in the load generator pay it once.
    """
    spec.validate()
    digest = spec.digest()
    verdict = _CHECKED.get(digest)
    if verdict is None:
        issues = tuple(_decomposition_issues(spec))
        verdict = issues if issues else True
        _remember(_CHECKED, digest, verdict)
    if verdict is not True:
        raise SpecError(list(verdict))


def compile_spec(
    spec: WorkflowSpec,
    inputs: Optional[Sequence[object]] = None,
    job_id: str = "",
) -> Job:
    """Lower a validated spec to an executable :class:`Job`.

    ``inputs`` overrides the spec's declared input source (the legacy
    factories' escape hatch); ``None`` materializes the declared source.
    The returned job carries the spec's content digest, which namespaces
    the planner's cached decisions per spec.
    """
    check_spec(spec)
    if inputs is None:
        inputs = materialize_inputs(spec)
    job = Job(
        description=spec.description,
        inputs=list(inputs),
        tasks=spec.task_hints(),
        constraints=ConstraintSet(priorities=spec.constraints),
        quality_target=spec.quality_target,
        job_id=job_id,
        spec_digest=spec.digest(),
        priority=spec.priority,
        deadline_s=spec.deadline_s,
    )
    return job
