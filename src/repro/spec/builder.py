"""Fluent construction of :class:`~repro.spec.ir.WorkflowSpec` values.

The builder is the Listing-2 authoring surface for user-defined workloads::

    spec = (
        WorkflowBuilder("newsfeed")
        .describe("Generate social media newsfeed for Alice")
        .inputs("posts")
        .stage("sentiment_analysis", "Run sentiment analysis on the recent posts")
        .then("text_generation",
              "Compose a personalised newsfeed for Alice from the posts")
        .constraints(MIN_COST)
        .quality(0.85)
        .build()
    )

``build()`` validates eagerly, so a misdeclared workflow fails at authoring
time with structured :class:`~repro.spec.ir.SpecError` findings, never at
submission time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.agents.base import AgentInterface
from repro.core.constraints import Constraint, ConstraintSet, DEFAULT_PRIORITY
from repro.spec.ir import (
    InputsSpec,
    SpecError,
    SpecIssue,
    StageSpec,
    WorkflowSpec,
    _constraint_of,
    _interface_of,
)

InterfaceLike = Union[AgentInterface, str]


class WorkflowBuilder:
    """Accumulates stages/edges/constraints and builds a validated spec."""

    def __init__(self, name: str, description: str = "") -> None:
        self._name = name
        self._description = description
        self._stages: List[StageSpec] = []
        self._inputs = InputsSpec()
        self._constraints: Tuple[Constraint, ...] = (Constraint.MIN_COST,)
        self._quality_target = 0.0
        self._priority = DEFAULT_PRIORITY
        self._deadline_s: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Intent and inputs
    # ------------------------------------------------------------------ #
    def describe(self, description: str) -> "WorkflowBuilder":
        """Set the natural-language job description (the workflow's intent)."""
        self._description = description
        return self

    def inputs(
        self,
        source: str,
        count: Optional[int] = None,
        items: Sequence[object] = (),
    ) -> "WorkflowBuilder":
        """Name the input source (``videos``/``posts``/``documents``/``inline``/``none``)."""
        self._inputs = InputsSpec(source=source, count=count, items=tuple(items))
        return self

    # ------------------------------------------------------------------ #
    # Stages and edges
    # ------------------------------------------------------------------ #
    def stage(
        self,
        interface: InterfaceLike,
        prompt: str = "",
        *,
        name: str = "",
        after: Sequence[InterfaceLike] = (),
        fan_out: str = "",
        modality: str = "",
    ) -> "WorkflowBuilder":
        """Declare a stage; ``after`` names its upstream stages (DAG edges)."""
        self._stages.append(
            StageSpec(
                interface=_interface_of(interface, name),
                prompt=prompt,
                name=name,
                after=tuple(self._stage_name(upstream) for upstream in after),
                fan_out=fan_out,
                modality=modality,
            )
        )
        return self

    def then(
        self,
        interface: InterfaceLike,
        prompt: str = "",
        **kwargs,
    ) -> "WorkflowBuilder":
        """Declare a stage depending on the most recently declared one."""
        if not self._stages:
            raise SpecError(
                [
                    SpecIssue(
                        code="no-upstream",
                        message="then() needs a preceding stage(); "
                        "declare the first stage with stage()",
                    )
                ]
            )
        after = tuple(kwargs.pop("after", ())) + (self._stages[-1].name,)
        return self.stage(interface, prompt, after=after, **kwargs)

    def edge(self, upstream: InterfaceLike, downstream: InterfaceLike) -> "WorkflowBuilder":
        """Add a dependency edge between two already-declared stages."""
        upstream_name = self._stage_name(upstream)
        downstream_name = self._stage_name(downstream)
        for index, stage in enumerate(self._stages):
            if stage.name == downstream_name:
                if upstream_name not in stage.after:
                    self._stages[index] = replace(
                        stage, after=stage.after + (upstream_name,)
                    )
                return self
        raise SpecError(
            [
                SpecIssue(
                    code="dangling-edge",
                    message=f"edge references undeclared stage {downstream_name!r}",
                )
            ]
        )

    # ------------------------------------------------------------------ #
    # Constraint / SLO block
    # ------------------------------------------------------------------ #
    def constraints(
        self, *objectives: Union[Constraint, str, ConstraintSet]
    ) -> "WorkflowBuilder":
        """Set the priority-ordered objectives (``MIN_COST``, ``"min_energy"``, ...)."""
        if len(objectives) == 1 and isinstance(objectives[0], ConstraintSet):
            constraint_set = objectives[0]
            self._constraints = constraint_set.priorities
            if constraint_set.quality_floor:
                self._quality_target = constraint_set.quality_floor
            return self
        self._constraints = tuple(_constraint_of(objective) for objective in objectives)
        return self

    def quality(self, target: float) -> "WorkflowBuilder":
        """Set the end-to-end result-quality floor."""
        self._quality_target = target
        return self

    def priority(self, priority_class: str) -> "WorkflowBuilder":
        """Set the admission priority class (``high``/``normal``/``low``)."""
        self._priority = priority_class
        return self

    def deadline(self, seconds: float) -> "WorkflowBuilder":
        """Set the end-to-end deadline SLO in seconds from arrival."""
        self._deadline_s = seconds
        return self

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self) -> WorkflowSpec:
        """Assemble the frozen spec and validate it eagerly."""
        return WorkflowSpec(
            name=self._name,
            description=self._description,
            stages=tuple(self._stages),
            constraints=self._constraints,
            quality_target=self._quality_target,
            priority=self._priority,
            deadline_s=self._deadline_s,
            inputs=self._inputs,
        ).validate()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stage_name(value: InterfaceLike) -> str:
        """Edges may name stages by declared name or by interface."""
        if isinstance(value, AgentInterface):
            return value.value
        return str(value)
