"""The unoptimized reference path for the orchestration hot-path overhaul.

The indexed profile store, memoized profiling, plan cache, cached DAG
structure, tuple-heap event loop, and incremental executor dispatch are pure
performance work: they must not change a single scheduling decision, plan
assignment, or event ordering.  This module reproduces the original
(pre-optimization) behaviour of every layer so benchmarks and tests can run
the same job down both paths and assert

* byte-identical execution plans and traces, and
* the speedup the optimized path claims.

Nothing here is used by the production path; it exists as an executable
regression baseline (the same role CGReplay-style replay harnesses play for
QoS claims: the measurement substrate itself must be checkable).
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.agents.library import AgentLibrary, default_library
from repro.core.dag import TaskGraph
from repro.core.runtime import MurakkabRuntime
from repro.core.task import Task
from repro.profiling.profiler import Profiler


class UncachedTaskGraph(TaskGraph):
    """A :class:`TaskGraph` with the original uncached structure queries.

    ``topological_order``/``stage_order`` recompute the full lexicographical
    topological sort on every call, and ``add_dependency`` re-runs the
    whole-graph acyclicity check per edge — exactly as the seed code did.
    """

    def add_dependency(self, upstream_id: str, downstream_id: str) -> None:
        for task_id in (upstream_id, downstream_id):
            if task_id not in self._tasks:
                raise KeyError(f"unknown task: {task_id}")
        if upstream_id == downstream_id:
            raise ValueError(f"task {upstream_id} cannot depend on itself")
        self._graph.add_edge(upstream_id, downstream_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream_id, downstream_id)
            raise ValueError(
                f"adding edge {upstream_id} -> {downstream_id} would create a cycle"
            )

    def topological_order(self) -> List[Task]:
        order = nx.lexicographical_topological_sort(self._graph)
        return [self._tasks[task_id] for task_id in order]

    def stage_order(self) -> List[str]:
        seen: List[str] = []
        for task in self.topological_order():
            if task.stage not in seen:
                seen.append(task.stage)
        return seen


def _stepwise_run(engine, until: Optional[float] = None, max_events: Optional[int] = None):
    """The original engine loop: peek/step method calls per event."""
    fired = 0
    while True:
        if max_events is not None and fired >= max_events:
            break
        next_time = engine._queue.peek_time()
        if next_time is None:
            break
        if until is not None and next_time > until:
            engine._clock.advance_to(until)
            break
        if not engine.step():
            break
        fired += 1
    if until is not None and engine.now < until and engine._queue.peek_time() is None:
        engine._clock.advance_to(until)
    return engine.now


def unoptimized_runtime(library: Optional[AgentLibrary] = None) -> MurakkabRuntime:
    """A :class:`MurakkabRuntime` running the pre-optimization hot path.

    * profiles the library from scratch (no memoized default store),
    * plans every submission without the plan cache,
    * builds DAGs through :class:`UncachedTaskGraph`,
    * drives the engine through the original step-wise event loop, and
    * executes with full ready-task rescans per dispatch.
    """
    library = library or default_library()
    runtime = MurakkabRuntime(
        library=library,
        profile_store=Profiler().profile_library(library),
    )
    runtime.orchestrator.planner.enable_plan_cache = False
    runtime.orchestrator.decomposer.graph_factory = UncachedTaskGraph
    runtime.executor_options["incremental_dispatch"] = False
    engine = runtime.engine
    runtime.engine.run = lambda until=None, max_events=None: _stepwise_run(
        engine, until=until, max_events=max_events
    )
    return runtime
