"""Baselines the paper compares against."""

from repro.baselines.omagent import OmAgentBaseline

__all__ = ["OmAgentBaseline"]
