"""The OmAgent-derived imperative baseline executor (paper §4 "Baseline").

"The baseline workflow specifies a fixed execution without any intra-task
parallelism or opportunity to utilize idle resources.  Each scene and its
constituent frames are processed sequentially."

The baseline compiles the Listing-1 imperative workflow into the shared
task-graph IR and executes it with a *fixed* plan and strictly sequential
dispatch (one task at a time, in topological order), on the same simulated
cluster, with the same energy accounting as the Murakkab runtime — so the
comparison isolates exactly what the paper's levers change.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.agents.base import AgentResult
from repro.agents.library import AgentLibrary, default_library
from repro.cluster.cluster import Cluster, paper_testbed
from repro.cluster.hardware import get_cpu_spec
from repro.cluster.manager import ClusterManager
from repro.cluster.scheduler import FirstFitPolicy, PlacementPolicy
from repro.core.execution import ServerPool, WorkflowExecutor
from repro.core.job import JobResult
from repro.core.quality import cascade_quality
from repro.sim.energy import EnergyAccountant
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace
from repro.workflows.imperative import ImperativeWorkflow
from repro.workflows.video_understanding import omagent_imperative_workflow
from repro.workloads.video import paper_videos

SECONDS_PER_HOUR = 3600.0


class OmAgentBaseline:
    """Runs an imperative workflow exactly as written: fixed and sequential."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        library: Optional[AgentLibrary] = None,
        engine: Optional[SimulationEngine] = None,
        placement_policy: Optional[PlacementPolicy] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        self.cluster = cluster or paper_testbed()
        self.cluster_manager = ClusterManager(
            self.cluster,
            policy=placement_policy or FirstFitPolicy(),
            time_source=lambda: self.engine.now,
        )
        self.library = library or default_library()

    def run(
        self,
        workflow: Optional[ImperativeWorkflow] = None,
        inputs: Optional[Sequence[object]] = None,
        description: str = "",
    ) -> JobResult:
        """Execute ``workflow`` (default: the paper's Video Understanding
        baseline) over ``inputs`` (default: the two paper videos)."""
        workflow = workflow or omagent_imperative_workflow()
        inputs = list(inputs) if inputs is not None else paper_videos()
        job, graph, plan = workflow.compile(inputs, description=description, library=self.library)

        started_at = self.engine.now
        trace = ExecutionTrace(label=job.job_id)
        pool = ServerPool(self.cluster_manager, self.library)
        executor = WorkflowExecutor(
            engine=self.engine,
            cluster_manager=self.cluster_manager,
            library=self.library,
            plan=plan,
            server_pool=pool,
            trace=trace,
            sequential=True,
            # The imperative stack has no orchestrator/cluster-manager
            # information exchange (that is the paper's point).
            announce=False,
            workflow_id=job.job_id,
        )
        results: Dict[str, AgentResult] = executor.execute(graph)
        finished_at = executor.finished_at if executor.finished_at is not None else self.engine.now

        provisioned_gpus = pool.total_gpus()
        accountant = EnergyAccountant(
            gpu_power=self.cluster.nodes[0].gpu_spec.power,
            cpu_power_per_core_w=get_cpu_spec().active_w_per_core,
        )
        energy = accountant.account(
            trace, provisioned_gpus=provisioned_gpus, window=(started_at, finished_at)
        )
        cost = self._estimate_cost(pool, finished_at - started_at, trace)
        output: Dict[str, object] = {}
        for task in graph.leaves():
            result = results.get(task.task_id)
            if result is not None:
                output.update(result.output)
        quality = cascade_quality(plan.stage_qualities())
        pool.teardown_all()

        return JobResult(
            job_id=job.job_id,
            output=output,
            task_results=results,
            makespan_s=finished_at - started_at,
            started_at=started_at,
            finished_at=finished_at,
            energy=energy,
            cost=cost,
            quality=quality,
            trace=trace,
            plan=plan,
            graph=graph,
            provisioned_gpus=provisioned_gpus,
        )

    def _estimate_cost(self, pool: ServerPool, duration_s: float, trace: ExecutionTrace) -> float:
        gpu_spec = self.cluster.nodes[0].gpu_spec
        cpu_spec = get_cpu_spec()
        cost = 0.0
        for handle in pool.handles():
            cost += handle.gpus * gpu_spec.cost_per_hour * duration_s / SECONDS_PER_HOUR
            cost += (
                handle.instance.cpu_cores
                * cpu_spec.cost_per_core_hour
                * duration_s
                / SECONDS_PER_HOUR
            )
        for interval in trace:
            if interval.gpu_count == 0 and interval.cpu_cores > 0:
                cost += (
                    interval.cpu_cores
                    * cpu_spec.cost_per_core_hour
                    * interval.duration
                    / SECONDS_PER_HOUR
                )
        return cost
