"""AI Workflows-as-a-Service (AIWaaS) façade (paper §5).

"Similar to Functions-as-a-Service, we propose an AI Workflows-as-a-Service
model ... Applications will not need rewriting when new models or tools are
available — the runtime system will transparently adopt newer
implementations and resources as needed."

:class:`AIWorkflowService` is that façade over the Murakkab runtime: callers
submit natural-language jobs and constraints; the service keeps serving
instances warm across jobs, keeps service-level accounting, and adopts newly
registered agent implementations (re-profiling them) without any change to
submitted jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    admission_of,
)
from repro.agents.base import AgentImplementation
from repro.cluster.dynamics import ClusterDynamics, DynamicsConfig
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.execution import ServerPool
from repro.core.job import Job, JobResult
from repro.core.quality_control import QualityController
from repro.core.runtime import MurakkabRuntime
from repro.loadgen import ServiceLoadGenerator
from repro.policies.bundles import PolicyBundle, PolicyLike
from repro.profiling.profiler import Profiler
from repro.telemetry.metrics import StreamingAggregate, evict_oldest
from repro.warmstate import WarmStateCache, resolve_warm_cache

if TYPE_CHECKING:
    from repro.fabric import FabricTopology


@dataclass
class ServiceStats:
    """Service-level accounting across every job served.

    Aggregates (counts, totals, streaming min/mean/max) are always exact and
    O(1) in memory.  Per-job detail is kept in :attr:`per_job` up to
    :attr:`max_per_job_records` entries (``None`` = unbounded); beyond the
    cap the oldest record is evicted, so a long-lived service — or a
    10k-job trace replay — cannot grow without bound.
    """

    jobs_completed: int = 0
    total_energy_wh: float = 0.0
    total_cost: float = 0.0
    total_makespan_s: float = 0.0
    per_job: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Cap on retained per-job records (``None`` keeps every record).
    max_per_job_records: Optional[int] = None
    #: How many per-job records have been evicted to honour the cap.
    per_job_evicted: int = 0
    makespan_s: StreamingAggregate = field(default_factory=StreamingAggregate)
    energy_wh: StreamingAggregate = field(default_factory=StreamingAggregate)
    cost: StreamingAggregate = field(default_factory=StreamingAggregate)
    quality: StreamingAggregate = field(default_factory=StreamingAggregate)
    #: Per-shard provenance counters, filled by :meth:`merge` when shard
    #: stats are folded into one global view; empty on a plain service.
    shards: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Fabric data-movement accounting (all zero unless a costed
    #: :class:`~repro.fabric.FabricTopology` is attached to the runtime).
    transfer_events: int = 0
    transferred_bytes: int = 0
    cross_rack_bytes: int = 0
    transfer_s: float = 0.0
    transfer_wh: float = 0.0

    @property
    def mean_makespan_s(self) -> float:
        if not self.jobs_completed:
            return 0.0
        return self.total_makespan_s / self.jobs_completed

    def provenance(self) -> Dict[str, float]:
        """The compact per-shard accounting record :meth:`merge` stores."""
        record = {
            "jobs_completed": self.jobs_completed,
            "total_energy_wh": self.total_energy_wh,
            "total_cost": self.total_cost,
            "total_makespan_s": self.total_makespan_s,
        }
        if self.transfer_events:
            record["transfer_events"] = self.transfer_events
            record["transferred_bytes"] = self.transferred_bytes
            record["cross_rack_bytes"] = self.cross_rack_bytes
            record["transfer_s"] = self.transfer_s
            record["transfer_wh"] = self.transfer_wh
        return record

    def merge(self, other: "ServiceStats", shard: Optional[int] = None) -> "ServiceStats":
        """Fold another service's accounting into this one.

        Counts and totals add, streaming aggregates merge exactly, and
        per-job detail is inserted in ``other``'s order (evicting oldest
        beyond this record's cap).  Counter merging is associative and
        order-insensitive; float totals commute exactly but re-associate
        only up to IEEE-754 rounding, the standard parallel-reduction
        contract.  ``shard`` records ``other``'s provenance in
        :attr:`shards`.  Returns ``self`` so merges chain.
        """
        self.jobs_completed += other.jobs_completed
        self.total_energy_wh += other.total_energy_wh
        self.total_cost += other.total_cost
        self.total_makespan_s += other.total_makespan_s
        self.transfer_events += other.transfer_events
        self.transferred_bytes += other.transferred_bytes
        self.cross_rack_bytes += other.cross_rack_bytes
        self.transfer_s += other.transfer_s
        self.transfer_wh += other.transfer_wh
        self.makespan_s.merge(other.makespan_s)
        self.energy_wh.merge(other.energy_wh)
        self.cost.merge(other.cost)
        self.quality.merge(other.quality)
        for job_id, record in other.per_job.items():
            self.per_job[job_id] = dict(record)
        self.per_job_evicted += other.per_job_evicted
        self._evict()
        for shard_id, record in other.shards.items():
            self.shards[shard_id] = dict(record)
        if shard is not None:
            self.shards[shard] = other.provenance()
        return self

    @classmethod
    def merged(
        cls,
        stats: Sequence["ServiceStats"],
        shard_ids: Optional[Sequence[int]] = None,
    ) -> "ServiceStats":
        """One global record folding every record in ``stats``.

        The base is a deep copy of the first record, so merging a single
        record is the identity apart from :attr:`shards` provenance when
        ``shard_ids`` is given — the 1-shard differential guarantee.
        """
        import copy as _copy

        if not stats:
            raise ValueError("at least one ServiceStats is required")
        if shard_ids is not None and len(shard_ids) != len(stats):
            raise ValueError("shard_ids must parallel stats")
        base = _copy.deepcopy(stats[0])
        if shard_ids is not None:
            base.shards[shard_ids[0]] = stats[0].provenance()
        for position, other in enumerate(stats[1:], start=1):
            base.merge(
                other, shard=shard_ids[position] if shard_ids is not None else None
            )
        return base

    def limit_per_job_records(self, cap: Optional[int]) -> None:
        """Bound (or unbound) retained per-job detail from now on."""
        if cap is not None and cap < 0:
            raise ValueError("max_per_job_records must be non-negative or None")
        self.max_per_job_records = cap
        self._evict()

    def record(self, result: JobResult) -> None:
        self.jobs_completed += 1
        self.total_energy_wh += result.energy_wh
        self.total_cost += result.cost
        self.total_makespan_s += result.makespan_s
        if result.transfer_events:
            self.transfer_events += result.transfer_events
            self.transferred_bytes += result.transferred_bytes
            self.cross_rack_bytes += result.cross_rack_bytes
            self.transfer_s += result.transfer_s
            self.transfer_wh += result.transfer_wh
        self.makespan_s.add(result.makespan_s)
        self.energy_wh.add(result.energy_wh)
        self.cost.add(result.cost)
        self.quality.add(result.quality)
        self.per_job[result.job_id] = result.compact_summary()
        self._evict()

    def _evict(self) -> None:
        self.per_job_evicted += evict_oldest(self.per_job, self.max_per_job_records)


class AIWorkflowService:
    """A long-lived service endpoint over one Murakkab runtime."""

    def __init__(
        self,
        runtime: Optional[MurakkabRuntime] = None,
        keep_warm: bool = True,
        dynamics: "ClusterDynamics | DynamicsConfig | None" = None,
        policy: PolicyLike = None,
        warm_cache: "WarmStateCache | str | None" = None,
        admission: "AdmissionConfig | None" = None,
        fabric: "FabricTopology | str | None" = None,
    ) -> None:
        """``policy`` installs a control-plane bundle on the runtime via
        :meth:`MurakkabRuntime.set_policy` — including a runtime passed in by
        the caller, whose existing placement/scheduling policies are replaced
        wholesale (bundles are coherent sets; to customise one seam, build a
        :class:`~repro.policies.bundles.PolicyBundle` with the desired
        policy instead of pre-configuring the runtime).

        ``warm_cache`` attaches a persistent
        :class:`~repro.warmstate.WarmStateCache` (or a directory path for
        one): a fresh process restores the profiling sweep and planner
        decisions a previous process saved — the rolling-restart story —
        and served traces are recorded so an identical trace replays with
        zero probe simulations.  A stale or corrupted cache silently falls
        back to the cold path.

        ``admission`` installs an :class:`~repro.admission.AdmissionConfig`
        (or its dict form): interactive ``submit``/``submit_spec`` calls are
        rate-limited (raising
        :class:`~repro.admission.AdmissionRejected` when shed), and every
        ``submit_trace`` runs behind a fresh per-run controller with the
        full ladder — rate limiting, deadline feasibility,
        degrade-before-drop (see :mod:`repro.admission`).

        ``fabric`` attaches a cluster-interconnect model (a
        :class:`~repro.fabric.FabricTopology`, a registered profile name
        such as ``"congested"``, or its dict form): dependent stages placed
        on different nodes then pay per-payload transfer time on the
        topology's links, and the service accounts moved bytes, cross-rack
        bytes, and transfer energy in :class:`ServiceStats`.  The
        ``uniform`` profile (and any zero-cost topology) is byte-identical
        to running with no fabric at all."""
        self.warm_cache: Optional[WarmStateCache] = resolve_warm_cache(warm_cache)
        if runtime is None:
            runtime = self._build_runtime(self.warm_cache)
        self.runtime = runtime
        if self.warm_cache is not None:
            self._restore_plan_cache()
        if policy is not None:
            self.runtime.set_policy(policy)
        if fabric is not None:
            self.runtime.set_fabric(fabric)
        self.keep_warm = keep_warm
        self.stats = ServiceStats()
        self._profiler = Profiler()
        self._pool: Optional[ServerPool] = None
        if keep_warm:
            self._pool = ServerPool(self.runtime.cluster_manager, self.runtime.library)
        #: Installed cluster-dynamics schedule; ``None`` = frozen testbed.
        self.dynamics: Optional[ClusterDynamics] = None
        if dynamics is not None:
            self.attach_dynamics(dynamics)
        #: Installed admission bundle; ``None`` admits everything.
        self.admission: Optional[AdmissionConfig] = None
        #: Long-lived controller for the interactive submit path (trace
        #: runs build their own per-run controller for replay determinism).
        self._admission_controller: Optional[AdmissionController] = None
        if admission is not None:
            self.set_admission(admission)

    # ------------------------------------------------------------------ #
    # Warm-state cache (zero-cost restarts)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_runtime(cache: Optional[WarmStateCache]) -> MurakkabRuntime:
        """A runtime over the default library, warm-started when possible.

        With a cache hit the profile store is rebuilt from the recorded
        sweep (same profiles, same insertion order — so planner behaviour is
        byte-identical) and the profiling sweep never runs.  Any miss or
        malformed payload falls back to the cold construction path.
        """
        if cache is None:
            return MurakkabRuntime()
        from repro.agents.library import default_library
        from repro.profiling.store import ProfileStore

        library = default_library()
        profiles = cache.load_profiles(library)
        if profiles is not None:
            master = ProfileStore()
            try:
                for profile in profiles:
                    master.add(profile)
            except Exception:
                pass  # malformed payload: profile below stays None-equivalent
            else:
                if len(master):
                    # ``copy()`` starts the mutation version at 0, exactly
                    # like the cold ``default_profile_store`` path.
                    return MurakkabRuntime(
                        library=library, profile_store=master.copy()
                    )
        runtime = MurakkabRuntime(library=library)
        cache.save_profiles(library, runtime.profile_store.all_profiles())
        return runtime

    def _restore_plan_cache(self) -> None:
        """Seed the planner's decision cache from the warm-state cache.

        Entries are self-validating (each key embeds the policy fingerprint,
        cluster-stats digest, and spec digest it was decided under), so a
        restored entry can only ever be served for an identical decision.
        The payload is rejected wholesale when it was saved against a
        different profile-store version.
        """
        payload = self.warm_cache.load_plan_cache(self.runtime.library)
        if payload is None:
            return
        if payload.get("store_version") != self.runtime.profile_store.version:
            return
        planner = self.runtime.planner
        try:
            planner.import_plan_cache(payload.get("entries", []))
        except Exception:
            planner.invalidate_cache()

    def save_warm_state(self) -> None:
        """Persist planner decisions to the warm cache (no-op without one).

        Called automatically at the end of every ``submit_trace`` and on
        :meth:`shutdown`; safe to call at any time.
        """
        cache = self.warm_cache
        if cache is None:
            return
        entries = self.runtime.planner.export_plan_cache()
        if entries:
            cache.save_plan_cache(
                self.runtime.library, self.runtime.profile_store.version, entries
            )

    @property
    def policy(self) -> Optional[PolicyBundle]:
        """The runtime's installed policy bundle (``None`` = stock behaviour)."""
        return self.runtime.policy

    def set_policy(self, policy: PolicyLike) -> PolicyBundle:
        """Switch the service's control-plane policy bundle.

        Takes effect for every subsequent ``submit``/``submit_trace``; plan
        caches and trace memos are keyed by the bundle fingerprint, so
        decisions cached under another policy are never replayed.
        """
        return self.runtime.set_policy(policy)

    @property
    def fabric(self) -> "Optional[FabricTopology]":
        """The runtime's attached interconnect model (``None`` = free moves)."""
        return self.runtime.fabric

    def set_fabric(self, fabric: "FabricTopology | str | None") -> "FabricTopology":
        """Attach (or replace) the cluster-interconnect model.

        Accepts a :class:`~repro.fabric.FabricTopology`, a registered
        profile name, or a topology dict; takes effect for every subsequent
        ``submit``/``submit_trace``.  Plan caches are keyed by the fabric
        fingerprint, so decisions cached under another topology are never
        replayed.
        """
        return self.runtime.set_fabric(fabric)

    def set_admission(
        self, admission: "AdmissionConfig | None"
    ) -> Optional[AdmissionConfig]:
        """Install (or clear, with ``None``) the admission bundle.

        Takes effect for every subsequent ``submit``/``submit_trace``.
        Accepts an :class:`~repro.admission.AdmissionConfig` or its dict
        form; returns the installed config.
        """
        self.admission = admission_of(admission)
        self._admission_controller = (
            AdmissionController(self.admission) if self.admission is not None else None
        )
        return self.admission

    def _admit_interactive(self, job: Job) -> None:
        """Rate-limit one interactive submission (no-op without admission).

        The interactive path has no steady-state makespan estimate, so the
        ladder reduces to token buckets plus the trivial deadline check;
        shed submissions raise :class:`~repro.admission.AdmissionRejected`.
        """
        controller = self._admission_controller
        if controller is None:
            return
        now = self.runtime.engine.now
        decision = controller.decide(
            tenant=job.description,
            priority=job.priority,
            arrival_at=now,
            deadline_s=job.deadline_s,
            backlog_until=now,
        )
        if not decision.admitted:
            raise AdmissionRejected(decision, job.job_id)

    def quality_controller(self) -> QualityController:
        """Quality controller bound to this service's profiles and policy."""
        return self.runtime.quality_controller()

    def attach_dynamics(
        self, dynamics: "ClusterDynamics | DynamicsConfig"
    ) -> ClusterDynamics:
        """Run this service's cluster under a disruption schedule.

        Spot windows, whole-server failures, and autoscaling commands fire
        as engine events during every subsequent ``submit``/``submit_trace``;
        the warm pool is watched so lost serving instances drop out of it.
        """
        dynamics = self.runtime.attach_dynamics(dynamics)
        if self._pool is not None:
            dynamics.watch_pool(self._pool)
        self.dynamics = dynamics
        return dynamics

    # ------------------------------------------------------------------ #
    # Job submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        description: str,
        inputs: Sequence[object] = (),
        tasks: Sequence[str] = (),
        constraints: Union[Constraint, ConstraintSet, None] = None,
        quality_target: float = 0.0,
        job_id: str = "",
    ) -> JobResult:
        """Submit a declarative job described entirely by its intent.

        Raises :class:`~repro.admission.AdmissionRejected` when an
        installed admission bundle sheds the submission.
        """
        job = Job(
            description=description,
            inputs=inputs,
            tasks=tasks,
            constraints=constraints,
            quality_target=quality_target,
            job_id=job_id,
        )
        self._admit_interactive(job)
        return self.submit_job(job)

    def submit_job(self, job: Job) -> JobResult:
        """Submit a pre-built :class:`Job`."""
        result = self.runtime.submit(job, server_pool=self._pool)
        self.stats.record(result)
        return result

    def submit_spec(
        self,
        spec,
        inputs: Optional[Sequence[object]] = None,
        job_id: str = "",
    ) -> JobResult:
        """Compile a declarative :class:`~repro.spec.ir.WorkflowSpec` and
        submit it (eagerly validated; raises
        :class:`~repro.spec.ir.SpecError` before anything executes, and
        :class:`~repro.admission.AdmissionRejected` when an installed
        admission bundle sheds the submission)."""
        from repro.spec.compiler import compile_spec

        job = compile_spec(spec, inputs=inputs, job_id=job_id)
        self._admit_interactive(job)
        return self.submit_job(job)

    def submit_trace(self, arrivals, **options):
        """Serve a whole arrival trace through the batched-admission path.

        ``arrivals`` is a sequence of
        :class:`~repro.workloads.arrival.JobArrival` (see
        ``repro.workloads.arrival`` for Poisson/uniform/bursty/diurnal
        generators).  Jobs are grouped by
        ``(workload, constraints, quality_target)`` so each group is planned
        once and simulated to steady state, after which completions are
        accounted incrementally on the shared engine instead of re-running
        the whole pipeline per job.  Returns a
        :class:`~repro.loadgen.TraceReport`.

        ``mode="multiplex"`` instead interleaves every arrival concurrently
        on the shared engine (the fidelity path), with jobs stamped from one
        compiled template per admission group and a steady-window detector
        that batch-replays repeating arrival windows
        (``multiplex_window=0`` disables it).  The admission ladder
        (``admission=...``) and the QoE ``collector`` work in both modes.

        See :class:`~repro.loadgen.ServiceLoadGenerator` for the options
        (``registry``, ``mode``, ``max_per_job_records``, ``policy`` — a
        bundle name or :class:`~repro.policies.bundles.PolicyBundle` to
        serve the trace under — ``dynamics``, which runs the trace under
        a spot-preemption/failure schedule and fills
        :attr:`~repro.loadgen.TraceReport.disruptions`, ``admission``,
        ``collector``, ``vectorized``, and ``multiplex_window``).
        """
        return ServiceLoadGenerator(self).run(arrivals, **options)

    # ------------------------------------------------------------------ #
    # Library evolution (transparent adoption of new models/tools)
    # ------------------------------------------------------------------ #
    def register_agent(self, implementation: AgentImplementation) -> None:
        """Make a new model/tool available to every subsequent job.

        The implementation is profiled immediately so the planner can select
        it; running jobs are unaffected, and no submitted job needs to change.
        """
        self.runtime.library.register(implementation)
        for profile in self._profiler.profile_implementation(implementation):
            self.runtime.profile_store.add(profile)
        if self.warm_cache is not None:
            # The library fingerprint changed: record the extended sweep so
            # a restart with the same library skips profiling again.
            self.warm_cache.save_profiles(
                self.runtime.library, self.runtime.profile_store.all_profiles()
            )

    def retire_agent(self, name: str) -> None:
        """Remove a deprecated model/tool from the library and its profiles."""
        self.runtime.library.unregister(name)
        self.runtime.profile_store.remove_agent(name)

    def available_agents(self) -> List[str]:
        return self.runtime.library.names()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def warm_agents(self) -> List[str]:
        """Serving instances currently kept warm between jobs."""
        return self.runtime.cluster_manager.warm_agents()

    def shutdown(self) -> None:
        """Tear down warm serving instances and release all resources."""
        self.save_warm_state()
        if self._pool is not None:
            self._pool.teardown_all()
            if self.dynamics is not None:
                self.dynamics.unwatch_pool(self._pool)
            self._pool = ServerPool(self.runtime.cluster_manager, self.runtime.library)
            if self.dynamics is not None:
                self.dynamics.watch_pool(self._pool)
