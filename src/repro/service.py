"""AI Workflows-as-a-Service (AIWaaS) façade (paper §5).

"Similar to Functions-as-a-Service, we propose an AI Workflows-as-a-Service
model ... Applications will not need rewriting when new models or tools are
available — the runtime system will transparently adopt newer
implementations and resources as needed."

:class:`AIWorkflowService` is that façade over the Murakkab runtime: callers
submit natural-language jobs and constraints; the service keeps serving
instances warm across jobs, keeps service-level accounting, and adopts newly
registered agent implementations (re-profiling them) without any change to
submitted jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.agents.base import AgentImplementation
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.execution import ServerPool
from repro.core.job import Job, JobResult
from repro.core.runtime import MurakkabRuntime
from repro.profiling.profiler import Profiler


@dataclass
class ServiceStats:
    """Service-level accounting across every job served."""

    jobs_completed: int = 0
    total_energy_wh: float = 0.0
    total_cost: float = 0.0
    total_makespan_s: float = 0.0
    per_job: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def mean_makespan_s(self) -> float:
        if not self.jobs_completed:
            return 0.0
        return self.total_makespan_s / self.jobs_completed

    def record(self, result: JobResult) -> None:
        self.jobs_completed += 1
        self.total_energy_wh += result.energy_wh
        self.total_cost += result.cost
        self.total_makespan_s += result.makespan_s
        self.per_job[result.job_id] = {
            "makespan_s": result.makespan_s,
            "energy_wh": result.energy_wh,
            "cost": result.cost,
            "quality": result.quality,
        }


class AIWorkflowService:
    """A long-lived service endpoint over one Murakkab runtime."""

    def __init__(self, runtime: Optional[MurakkabRuntime] = None, keep_warm: bool = True) -> None:
        self.runtime = runtime or MurakkabRuntime()
        self.keep_warm = keep_warm
        self.stats = ServiceStats()
        self._profiler = Profiler()
        self._pool: Optional[ServerPool] = None
        if keep_warm:
            self._pool = ServerPool(self.runtime.cluster_manager, self.runtime.library)

    # ------------------------------------------------------------------ #
    # Job submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        description: str,
        inputs: Sequence[object] = (),
        tasks: Sequence[str] = (),
        constraints: Union[Constraint, ConstraintSet, None] = None,
        quality_target: float = 0.0,
        job_id: str = "",
    ) -> JobResult:
        """Submit a declarative job described entirely by its intent."""
        job = Job(
            description=description,
            inputs=inputs,
            tasks=tasks,
            constraints=constraints,
            quality_target=quality_target,
            job_id=job_id,
        )
        return self.submit_job(job)

    def submit_job(self, job: Job) -> JobResult:
        """Submit a pre-built :class:`Job`."""
        result = self.runtime.submit(job, server_pool=self._pool)
        self.stats.record(result)
        return result

    # ------------------------------------------------------------------ #
    # Library evolution (transparent adoption of new models/tools)
    # ------------------------------------------------------------------ #
    def register_agent(self, implementation: AgentImplementation) -> None:
        """Make a new model/tool available to every subsequent job.

        The implementation is profiled immediately so the planner can select
        it; running jobs are unaffected, and no submitted job needs to change.
        """
        self.runtime.library.register(implementation)
        for profile in self._profiler.profile_implementation(implementation):
            self.runtime.profile_store.add(profile)

    def retire_agent(self, name: str) -> None:
        """Remove a deprecated model/tool from the library and its profiles."""
        self.runtime.library.unregister(name)
        self.runtime.profile_store.remove_agent(name)

    def available_agents(self) -> List[str]:
        return self.runtime.library.names()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def warm_agents(self) -> List[str]:
        """Serving instances currently kept warm between jobs."""
        return self.runtime.cluster_manager.warm_agents()

    def shutdown(self) -> None:
        """Tear down warm serving instances and release all resources."""
        if self._pool is not None:
            self._pool.teardown_all()
            self._pool = ServerPool(self.runtime.cluster_manager, self.runtime.library)
