"""Telemetry: utilisation timelines, energy reports, and text renderers.

These are the reporting tools the benchmark harness uses to regenerate the
paper's Figure 3 (execution traces + CPU/GPU utilisation curves) and Table 2
(energy and completion time per configuration) from simulation results.
"""

from repro.telemetry.timeline import UtilizationTimeline, gantt_text
from repro.telemetry.metrics import (
    StreamingAggregate,
    ThroughputMeter,
    average_utilization,
    energy_efficiency_gain,
    geometric_mean,
    speedup,
)
from repro.telemetry.energy_report import Table2Row, build_table2_rows, render_table2
from repro.telemetry.reporting import render_comparison_table, render_table

__all__ = [
    "UtilizationTimeline",
    "gantt_text",
    "speedup",
    "energy_efficiency_gain",
    "average_utilization",
    "geometric_mean",
    "StreamingAggregate",
    "ThroughputMeter",
    "Table2Row",
    "build_table2_rows",
    "render_table2",
    "render_table",
    "render_comparison_table",
]
