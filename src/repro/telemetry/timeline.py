"""Utilisation timelines and Gantt-style renderings (Figure 3).

The paper's Figure 3 has two kinds of panels: per-category execution traces
(which agent ran when) and cluster CPU/GPU utilisation over time.  Both are
derived here from an :class:`~repro.sim.trace.ExecutionTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.trace import ExecutionTrace


@dataclass
class UtilizationTimeline:
    """Sampled CPU and GPU utilisation (%) over a trace's duration."""

    times: List[float] = field(default_factory=list)
    gpu_percent: List[float] = field(default_factory=list)
    cpu_percent: List[float] = field(default_factory=list)

    @classmethod
    def from_trace(
        cls,
        trace: ExecutionTrace,
        total_gpus: int,
        total_cpu_cores: int,
        resolution_s: float = 1.0,
    ) -> "UtilizationTimeline":
        """Sample device utilisation from busy intervals.

        GPU utilisation counts a GPU as busy (weighted by its interval's
        utilisation level) while a task runs on it; CPU utilisation counts
        busy cores.  Both are normalised by the cluster totals, matching the
        "% Utilization" panels of Figure 3.
        """
        if resolution_s <= 0:
            raise ValueError("resolution_s must be positive")
        if total_gpus < 0 or total_cpu_cores < 0:
            raise ValueError("device totals must be non-negative")
        timeline = cls()
        if len(trace) == 0:
            return timeline
        start = trace.start_time()
        end = trace.end_time()
        steps = max(1, int(np.ceil((end - start) / resolution_s)))
        for step in range(steps):
            window_start = start + step * resolution_s
            window_end = min(window_start + resolution_s, end)
            window = max(window_end - window_start, 1e-9)
            gpu_busy = 0.0
            cpu_busy = 0.0
            for interval in trace:
                overlap = interval.overlaps(window_start, window_end)
                if overlap <= 0:
                    continue
                gpu_busy += interval.gpu_count * interval.gpu_utilization * overlap
                cpu_busy += interval.cpu_cores * interval.cpu_utilization * overlap
            timeline.times.append(window_start - start)
            if total_gpus > 0:
                timeline.gpu_percent.append(100.0 * gpu_busy / (total_gpus * window))
            else:
                timeline.gpu_percent.append(0.0)
            if total_cpu_cores > 0:
                timeline.cpu_percent.append(100.0 * cpu_busy / (total_cpu_cores * window))
            else:
                timeline.cpu_percent.append(0.0)
        return timeline

    @property
    def mean_gpu_percent(self) -> float:
        return float(np.mean(self.gpu_percent)) if self.gpu_percent else 0.0

    @property
    def mean_cpu_percent(self) -> float:
        return float(np.mean(self.cpu_percent)) if self.cpu_percent else 0.0

    @property
    def peak_gpu_percent(self) -> float:
        return float(np.max(self.gpu_percent)) if self.gpu_percent else 0.0

    @property
    def peak_cpu_percent(self) -> float:
        return float(np.max(self.cpu_percent)) if self.cpu_percent else 0.0


def gantt_text(trace: ExecutionTrace, width: int = 80) -> str:
    """A text rendering of the per-category execution trace (Figure 3 top).

    Each category becomes one row; ``#`` marks time bins in which at least
    one task of that category was running.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if len(trace) == 0:
        return "(empty trace)"
    start = trace.start_time()
    end = trace.end_time()
    span = max(end - start, 1e-9)
    lines = [f"timeline 0s .. {span:.1f}s ({width} bins)"]
    rows = trace.gantt_rows()
    label_width = max(len(category) for category in rows)
    for category, bars in rows.items():
        cells = [" "] * width
        for bar_start, bar_end in bars:
            first = int((bar_start - start) / span * (width - 1))
            last = int((bar_end - start) / span * (width - 1))
            for index in range(first, last + 1):
                cells[index] = "#"
        lines.append(f"{category.ljust(label_width)} |{''.join(cells)}|")
    return "\n".join(lines)
