"""Table-2-style energy/time reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro import calibration
from repro.core.job import JobResult
from repro.telemetry.reporting import render_table


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2: a Speech-to-Text configuration."""

    config: str
    energy_wh: float
    time_s: float
    paper_energy_wh: Optional[float] = None
    paper_time_s: Optional[float] = None
    #: Data-movement energy charged by an attached fabric; ``None`` when no
    #: fabric was attached, so the column (and the golden byte surface of
    #: fabric-free reports) only appears on fabric-enabled runs.
    transfer_wh: Optional[float] = None

    def as_cells(self) -> List[str]:
        cells = [self.config, f"{self.energy_wh:.1f}", f"{self.time_s:.1f}"]
        if self.transfer_wh is not None:
            cells.append(f"{self.transfer_wh:.4f}")
        if self.paper_energy_wh is not None and self.paper_time_s is not None:
            cells.extend([f"{self.paper_energy_wh:.0f}", f"{self.paper_time_s:.0f}"])
        return cells


def build_table2_rows(
    results: Mapping[str, JobResult],
    paper_values: Optional[Mapping[str, Dict[str, float]]] = None,
) -> List[Table2Row]:
    """Build Table-2 rows from labelled job results.

    ``results`` maps a configuration label (``baseline``, ``murakkab-cpu``,
    ``murakkab-gpu``, ``murakkab-gpu+cpu``) to its :class:`JobResult`;
    ``paper_values`` defaults to the numbers reported in the paper so the
    rendered table shows paper-vs-measured side by side.
    """
    if paper_values is None:
        paper_values = calibration.PAPER_TABLE2
    rows: List[Table2Row] = []
    for label, result in results.items():
        paper = paper_values.get(label, {})
        rows.append(
            Table2Row(
                config=label,
                energy_wh=result.energy_wh,
                time_s=result.makespan_s,
                paper_energy_wh=paper.get("energy_wh"),
                paper_time_s=paper.get("time_s"),
                # Only fabric-enabled runs record transfer events; leaving
                # the field None keeps fabric-free tables byte-identical.
                transfer_wh=result.transfer_wh if result.transfer_events else None,
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    """Render Table 2 as text, with paper columns when available."""
    with_paper = all(row.paper_energy_wh is not None for row in rows)
    with_transfer = any(row.transfer_wh is not None for row in rows)
    headers = ["Speech-to-Text Config.", "Energy (Wh)", "Time (s)"]
    if with_transfer:
        headers.append("Transfer (Wh)")
    if with_paper:
        headers += ["Paper Energy (Wh)", "Paper Time (s)"]
    cells = []
    for row in rows:
        if with_transfer and row.transfer_wh is None:
            # Mixed rows: pad so the fabric column stays aligned.
            row = Table2Row(
                config=row.config,
                energy_wh=row.energy_wh,
                time_s=row.time_s,
                paper_energy_wh=row.paper_energy_wh,
                paper_time_s=row.paper_time_s,
                transfer_wh=0.0,
            )
        cells.append(row.as_cells())
    return render_table(headers, cells)
