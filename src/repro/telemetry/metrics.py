"""Headline metrics: speedup, energy-efficiency gain, utilisation, and
streaming aggregates for long trace-driven runs.

The scalar helpers are defensive: empty inputs and zero values come up
naturally on degenerate runs (an empty trace, a zero-quality stage) and are
answered with ``0.0`` instead of an exception, so a long-lived service's
telemetry loop never dies on an edge case.  Genuinely malformed inputs
(negative durations, negative values) still raise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.sim.trace import ExecutionTrace

try:  # numpy accelerates batched accounting; the pure-Python path is exact too.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Below this many values the numpy call overhead exceeds the loop cost.
_NUMPY_MIN_BATCH = 32


def round_sig(value: float, digits: int = 12) -> float:
    """Round ``value`` to ``digits`` significant digits.

    The convergence/steady-window detectors compare metrics at 12
    significant digits: identical executions at different absolute engine
    times accumulate ~1e-15 relative floating-point jitter in interval
    arithmetic, which must not block a match.
    """
    return float(f"{value:.{digits}g}")


def sequential_sum(start: float, values: Sequence[float]) -> float:
    """``start + v0 + v1 + ...`` with strict left-to-right IEEE-754 order.

    This is *not* ``math.fsum`` or ``numpy.sum`` (both reorder additions):
    batched trace accounting must land on the byte-identical total a
    one-value-at-a-time loop produces, so the accumulation order is pinned.
    ``numpy.cumsum`` performs the same left-to-right accumulation in C and
    is used when available for large batches.
    """
    n = len(values)
    if _np is not None and n >= _NUMPY_MIN_BATCH:
        chain = _np.empty(n + 1, dtype=_np.float64)
        chain[0] = start
        chain[1:] = values
        return float(_np.cumsum(chain)[-1])
    total = start
    for value in values:
        total += value
    return total


def repeated_sum(start: float, value: float, count: int) -> float:
    """``start + value`` applied ``count`` times, in sequential IEEE order.

    Repeated addition of a constant does **not** equal ``start + value *
    count`` in floating point; steady-state replay runs add one memoized
    value per job, so the byte-identical batched form repeats the addition.
    """
    if count <= 0:
        return start
    if _np is not None and count >= _NUMPY_MIN_BATCH:
        chain = _np.empty(count + 1, dtype=_np.float64)
        chain[0] = start
        chain[1:] = value
        return float(_np.cumsum(chain)[-1])
    total = start
    for _ in range(count):
        total += value
    return total


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    """How many times faster the optimised run is (the paper's ~3.4x)."""
    if optimized_seconds <= 0:
        raise ValueError("optimized_seconds must be positive")
    if baseline_seconds < 0:
        raise ValueError("baseline_seconds must be non-negative")
    return baseline_seconds / optimized_seconds


def energy_efficiency_gain(baseline_wh: float, optimized_wh: float) -> float:
    """How many times more energy efficient the optimised run is (~4.5x)."""
    if optimized_wh <= 0:
        raise ValueError("optimized_wh must be positive")
    if baseline_wh < 0:
        raise ValueError("baseline_wh must be non-negative")
    return baseline_wh / optimized_wh


def average_utilization(
    trace: ExecutionTrace, total_gpus: int, window: float = 0.0
) -> float:
    """Mean GPU utilisation fraction over the trace span (0..1).

    Degenerate inputs — no GPUs, an empty trace, a zero-length window —
    yield ``0.0`` rather than raising, so telemetry over an idle service
    stays total.  A negative window is malformed and raises.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    if total_gpus <= 0 or len(trace) == 0:
        return 0.0
    span = window or trace.makespan()
    if span <= 0:
        return 0.0
    return min(1.0, trace.busy_gpu_seconds() / (total_gpus * span))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used when aggregating per-workflow speedups.

    An empty sequence yields ``0.0`` (there is nothing to aggregate), and any
    zero value collapses the mean to ``0.0`` — the mathematical limit —
    instead of raising.  Negative values are malformed and raise.
    """
    values = list(values)
    if not values:
        return 0.0
    log_sum = 0.0
    for value in values:
        if value < 0:
            raise ValueError("geometric_mean requires non-negative values")
        if value == 0:
            return 0.0
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def evict_oldest(mapping: Dict, cap: Optional[int]) -> int:
    """Delete insertion-oldest entries of ``mapping`` beyond ``cap``.

    The shared primitive behind every bounded rolling-detail store (service
    per-job records, trace-report summaries).  ``cap=None`` means unbounded.
    Returns how many entries were evicted.
    """
    if cap is None:
        return 0
    evicted = 0
    while len(mapping) > cap:
        # Dicts preserve insertion order, so the first key is the oldest.
        del mapping[next(iter(mapping))]
        evicted += 1
    return evicted


@dataclass
class StreamingAggregate:
    """Exact count/total/min/max/mean over a stream of values in O(1) memory.

    A 10k-job trace run folds every per-job metric (makespan, energy, cost,
    quality) into one of these instead of accumulating per-job dicts, so
    service-level accounting stays bounded no matter how long the service
    lives.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_repeated(self, value: float, count: int) -> None:
        """Byte-identical to calling :meth:`add` ``count`` times with ``value``.

        The batched form of steady-state replay accounting: the total is
        accumulated in sequential IEEE order (see :func:`repeated_sum`), and
        min/max are order-independent.
        """
        if count <= 0:
            return
        self.count += count
        self.total = repeated_sum(self.total, value, count)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_sequence(self, values: Sequence[float]) -> None:
        """Byte-identical to calling :meth:`add` for each value in order."""
        n = len(values)
        if not n:
            return
        self.count += n
        self.total = sequential_sum(self.total, values)
        lo = values.min() if _np is not None and isinstance(values, _np.ndarray) else min(values)
        hi = values.max() if _np is not None and isinstance(values, _np.ndarray) else max(values)
        lo = float(lo)
        hi = float(hi)
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def merge(self, other: "StreamingAggregate") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class ThroughputMeter:
    """Jobs/sec over a run, tracked incrementally as completions stream in."""

    completed: int = 0
    first_start: float = math.inf
    last_finish: float = -math.inf

    def record(self, started_at: float, finished_at: float) -> None:
        self.completed += 1
        if started_at < self.first_start:
            self.first_start = started_at
        if finished_at > self.last_finish:
            self.last_finish = finished_at

    def merge(self, other: "ThroughputMeter") -> None:
        """Fold another meter in: the merged span covers both runs.

        Counts add and the span extrema take the min/max, so merging is
        associative and order-insensitive — the property shard-merged trace
        reports rely on.
        """
        self.completed += other.completed
        if other.first_start < self.first_start:
            self.first_start = other.first_start
        if other.last_finish > self.last_finish:
            self.last_finish = other.last_finish

    @property
    def span_s(self) -> float:
        if not self.completed:
            return 0.0
        return max(0.0, self.last_finish - self.first_start)

    @property
    def jobs_per_second(self) -> float:
        span = self.span_s
        return self.completed / span if span > 0 else 0.0
