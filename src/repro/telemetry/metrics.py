"""Headline metrics: speedup, energy-efficiency gain, utilisation."""

from __future__ import annotations

from typing import Iterable

from repro.sim.trace import ExecutionTrace


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    """How many times faster the optimised run is (the paper's ~3.4x)."""
    if optimized_seconds <= 0:
        raise ValueError("optimized_seconds must be positive")
    if baseline_seconds < 0:
        raise ValueError("baseline_seconds must be non-negative")
    return baseline_seconds / optimized_seconds


def energy_efficiency_gain(baseline_wh: float, optimized_wh: float) -> float:
    """How many times more energy efficient the optimised run is (~4.5x)."""
    if optimized_wh <= 0:
        raise ValueError("optimized_wh must be positive")
    if baseline_wh < 0:
        raise ValueError("baseline_wh must be non-negative")
    return baseline_wh / optimized_wh


def average_utilization(
    trace: ExecutionTrace, total_gpus: int, window: float = 0.0
) -> float:
    """Mean GPU utilisation fraction over the trace span (0..1)."""
    if total_gpus <= 0:
        return 0.0
    span = window or trace.makespan()
    if span <= 0:
        return 0.0
    return min(1.0, trace.busy_gpu_seconds() / (total_gpus * span))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used when aggregating per-workflow speedups."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
