"""Plain-text table renderers used by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned text table with a header separator."""
    rows = [list(map(str, row)) for row in rows]
    headers = list(map(str, headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers: {row}"
            )
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _format(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)).rstrip()

    lines = [_format(headers), "  ".join("-" * width for width in widths)]
    lines.extend(_format(row) for row in rows)
    return "\n".join(lines)


def render_comparison_table(
    metric_name: str,
    paper_vs_measured: Mapping[str, Sequence[float]],
) -> str:
    """Render ``{label: (paper_value, measured_value)}`` with ratio column."""
    rows: List[List[str]] = []
    for label, (paper_value, measured_value) in paper_vs_measured.items():
        ratio = measured_value / paper_value if paper_value else float("nan")
        rows.append([label, f"{paper_value:.2f}", f"{measured_value:.2f}", f"{ratio:.2f}x"])
    return render_table([metric_name, "paper", "measured", "measured/paper"], rows)
