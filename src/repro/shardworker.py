"""Shard worker: the process-side half of :class:`~repro.sharding.ShardedService`.

Each shard of a process-backed sharded service is one long-lived worker
process running this module's entry points through a single-worker executor
(so every dispatch for a shard lands here, in the same interpreter).  The
worker hosts a persistent :class:`~repro.service.AIWorkflowService` — its
engine, planner, profile store, and warm pool survive across dispatches, so
steady-state memoization and warm-cache state amortise exactly as they do
in-process.

Everything that crosses the boundary is plain serializable data:

* **in**: a config recipe (keep-warm flag, policy bundle *name*, shard-local
  warm-cache directory), workload specs as :class:`~repro.spec.ir.WorkflowSpec`
  JSON, and arrival columns (times, workload names, global trace indices);
* **out**: the shard's :class:`~repro.loadgen.TraceReport`, a
  :class:`~repro.service.ServiceStats` snapshot, and warm-cache counters —
  the parent folds these into the global view.

Spawn-safe: no module-level work happens at import beyond defining the
state dict, and workers rebuild workloads from spec JSON (spec input
materialization is deterministic, so a shard compiles byte-identical jobs
to the parent's registry).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

#: The worker process's persistent state: one service (plus the registry of
#: workloads it has been shipped) for the life of the process.
_STATE: Dict[str, object] = {
    "service": None,
    "service_key": None,
    "policy": None,
    "fabric": None,
    "registry": None,
    "registered": {},
}


def _configure(config: Dict[str, object], warm_cache: Optional[str]):
    """The worker's persistent service, (re)built only when the recipe changes.

    The service is keyed by ``(warm_cache, keep_warm)``; a policy change
    alone re-points the existing service (bundles install atomically and all
    caches are fingerprint-namespaced), preserving its warm profile store
    and steady-state memos.
    """
    from repro.service import AIWorkflowService

    key = (warm_cache, bool(config.get("keep_warm", True)))
    service = _STATE["service"]
    if service is None or _STATE["service_key"] != key:
        if service is not None:
            service.shutdown()
        service = AIWorkflowService(
            keep_warm=bool(config.get("keep_warm", True)),
            warm_cache=warm_cache,
        )
        _STATE["service"] = service
        _STATE["service_key"] = key
        _STATE["policy"] = None
        _STATE["fabric"] = None
        _STATE["registry"] = None
        _STATE["registered"] = {}
    policy = config.get("policy")
    if policy != _STATE["policy"]:
        if policy is not None:
            service.set_policy(policy)
        _STATE["policy"] = policy
    fabric = config.get("fabric")
    if fabric != _STATE["fabric"]:
        # Shipped in dict form; set_fabric(None) detaches, so a cleared
        # fabric re-points the service just like a policy change.
        service.set_fabric(fabric)
        _STATE["fabric"] = fabric
    return service


def _registry(specs: Dict[str, str]):
    """The worker's workload registry, extended with any newly shipped specs.

    Specs are tracked by content digest so a re-shipped identical spec is
    not re-registered (input materialization runs once per distinct spec),
    while a changed spec under the same name re-registers.
    """
    from repro.loadgen import WorkloadRegistry
    from repro.spec.ir import WorkflowSpec

    registry = _STATE["registry"]
    if registry is None:
        registry = WorkloadRegistry()
        _STATE["registry"] = registry
        _STATE["registered"] = {}
    registered: Dict[str, str] = _STATE["registered"]  # type: ignore[assignment]
    for name, text in specs.items():
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if registered.get(name) == digest:
            continue
        registry.register_spec(WorkflowSpec.from_json(text), name=name)
        registered[name] = digest
    return registry


def _outcome(shard: int, service) -> Dict[str, object]:
    cache = service.warm_cache
    return {
        "shard": shard,
        "stats": service.stats,
        "cache": cache.counters() if cache is not None else None,
    }


def serve_trace(payload: Dict[str, object]) -> Dict[str, object]:
    """Serve one shard's sub-trace on the persistent worker service.

    ``payload['indices']`` carries each arrival's *global* trace index, and
    job ids are derived from it — so the shard's job ids (and therefore its
    report's job summaries) are exactly the ones an unsharded serving of
    the full trace would have produced for these arrivals.
    """
    from repro.workloads.arrival import JobArrival

    service = _configure(payload["config"], payload.get("warm_cache"))
    registry = _registry(payload["specs"])
    times: List[float] = payload["times"]
    workloads: List[str] = payload["workloads"]
    indices: List[int] = payload["indices"]
    arrivals = [
        JobArrival(arrival_time=time, workload=workload)
        for time, workload in zip(times, workloads)
    ]
    report = service.submit_trace(
        arrivals,
        registry=registry,
        job_ids=lambda local, workload: f"trace-{indices[local]:05d}-{workload}",
        **payload["options"],
    )
    outcome = _outcome(payload["shard"], service)
    outcome["report"] = report
    return outcome


def _slim_result(result):
    """The accounting/output core of a :class:`~repro.core.job.JobResult`.

    Plans, DAGs, and execution traces reference planner/engine internals
    that are heavy (and pointless) to pickle back; the parent documents
    that process-backed single-job results carry accounting only.
    """
    from dataclasses import replace

    return replace(result, trace=None, plan=None, graph=None, react_trace=None)


def serve_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one pre-built :class:`~repro.core.job.Job` on the worker service."""
    service = _configure(payload["config"], payload.get("warm_cache"))
    result = service.submit_job(payload["job"])
    outcome = _outcome(payload["shard"], service)
    outcome["result"] = _slim_result(result)
    return outcome


def shutdown_service(save_only: bool = False) -> Dict[str, object]:
    """Persist the worker's warm state; tear the service down unless
    ``save_only``.  Safe to call on a worker that never served anything."""
    service = _STATE["service"]
    outcome: Dict[str, object] = {"cache": None}
    if service is None:
        return outcome
    cache = service.warm_cache
    if save_only:
        service.save_warm_state()
    else:
        service.shutdown()
        _STATE["service"] = None
        _STATE["service_key"] = None
        _STATE["policy"] = None
        _STATE["registry"] = None
        _STATE["registered"] = {}
    if cache is not None:
        outcome["cache"] = cache.counters()
    return outcome
