"""Murakkab core: the declarative programming model and the adaptive runtime.

This package is the paper's primary contribution:

* the declarative workflow programming model — :class:`~repro.core.job.Job`,
  constraints, and the task-DAG intermediate representation (paper §3.1,
  Listing 2);
* the adaptive runtime — job decomposition, task-to-agent mapping,
  profile-driven model/tool selection, configuration planning over the
  Table-1 levers, and DAG-aware execution co-scheduled with the cluster
  manager (paper §3.2).
"""

from repro.core.constraints import (
    Constraint,
    ConstraintSet,
    MAX_QUALITY,
    MIN_COST,
    MIN_ENERGY,
    MIN_LATENCY,
    MIN_POWER,
)
from repro.core.task import Task, TaskState
from repro.core.dag import TaskGraph
from repro.core.job import Job, JobResult
from repro.core.decomposer import JobDecomposer
from repro.core.mapper import TaskAgentMapper
from repro.core.planner import (
    ConfigurationPlanner,
    ExecutionPlan,
    PlanAssignment,
    PlannerOverride,
)
from repro.core.execution import ServerPool, WorkflowExecutor
from repro.core.quality import cascade_quality, score_object_listing_answer
from repro.core.quality_control import QualityController, plan_checkpoints
from repro.core.orchestrator import WorkflowOrchestrator
from repro.core.runtime import MurakkabRuntime

__all__ = [
    "Constraint",
    "ConstraintSet",
    "MIN_COST",
    "MIN_LATENCY",
    "MIN_ENERGY",
    "MIN_POWER",
    "MAX_QUALITY",
    "Task",
    "TaskState",
    "TaskGraph",
    "Job",
    "JobResult",
    "JobDecomposer",
    "TaskAgentMapper",
    "ConfigurationPlanner",
    "ExecutionPlan",
    "PlanAssignment",
    "PlannerOverride",
    "ServerPool",
    "WorkflowExecutor",
    "cascade_quality",
    "score_object_listing_answer",
    "QualityController",
    "plan_checkpoints",
    "WorkflowOrchestrator",
    "MurakkabRuntime",
]
