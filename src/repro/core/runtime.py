"""The Murakkab adaptive runtime.

The runtime owns the simulated cluster, the agent library and its profiles,
and the discrete-event engine.  ``submit`` runs one declarative job end to
end: orchestration (decompose -> map -> plan against live cluster stats),
DAG announcement to the cluster manager, execution with serving instances
and per-task CPU lanes, and finally energy / cost / quality accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import calibration
from repro.agents.base import AgentInterface, AgentResult
from repro.agents.library import AgentLibrary, default_library
from repro.cluster.cluster import Cluster, paper_testbed
from repro.cluster.dynamics import ClusterDynamics, DynamicsConfig
from repro.cluster.hardware import get_cpu_spec
from repro.cluster.manager import ClusterManager
from repro.cluster.scheduler import PlacementPolicy, WorkflowAwarePolicy
from repro.core.constraints import ConstraintSet
from repro.core.execution import ExecutionError, ServerPool, WorkflowExecutor
from repro.core.job import Job, JobResult
from repro.core.orchestrator import OrchestrationResult, WorkflowOrchestrator
from repro.core.planner import PlannerOverride
from repro.core.quality import cascade_quality, score_object_listing_answer
from repro.core.quality_control import QualityController
from repro.fabric import FabricTopology, fabric_of
from repro.policies.bundles import PolicyBundle, PolicyLike, resolve_bundle
from repro.profiling.profiler import default_profile_store
from repro.profiling.store import ProfileStore
from repro.sim.energy import EnergyAccountant
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace
from repro.workloads.video import SyntheticVideo

SECONDS_PER_HOUR = 3600.0


class MurakkabRuntime:
    """End-to-end runtime: declarative jobs in, measured results out."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        library: Optional[AgentLibrary] = None,
        profile_store: Optional[ProfileStore] = None,
        engine: Optional[SimulationEngine] = None,
        placement_policy: Optional[PlacementPolicy] = None,
        max_cpu_cores_per_agent: int = calibration.STT_CPU_TOTAL_CORES,
        policy: PolicyLike = None,
        fabric: "FabricTopology | str | None" = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        self.cluster = cluster or paper_testbed()
        self.cluster_manager = ClusterManager(
            self.cluster,
            policy=placement_policy or WorkflowAwarePolicy(),
            time_source=lambda: self.engine.now,
        )
        self.library = library or default_library()
        # Memoized by library fingerprint: repeated runtime constructions over
        # an identical library reuse the profiling sweep (paper §3.3: system
        # overheads must stay <1% of workflow execution time).
        self.profile_store = profile_store or default_profile_store(self.library)
        self.orchestrator = WorkflowOrchestrator(self.library, self.profile_store)
        self.orchestrator.planner.max_cpu_cores_per_agent = max_cpu_cores_per_agent
        #: Extra keyword arguments passed to every WorkflowExecutor this
        #: runtime creates (e.g. ``{"incremental_dispatch": False}`` for the
        #: unoptimized reference path in repro.baselines.unoptimized).
        self.executor_options: Dict[str, object] = {}
        #: Installed cluster-dynamics schedule, or ``None`` for the frozen
        #: testbed (see :meth:`attach_dynamics`).
        self.dynamics: Optional[ClusterDynamics] = None
        #: Installed control-plane policy bundle; ``None`` means the stock
        #: behaviour (every layer falls back to its default policy).
        self.policy: Optional[PolicyBundle] = None
        #: Attached cluster interconnect model, or ``None`` for the
        #: historical free-data-movement behaviour.
        self.fabric: Optional[FabricTopology] = None
        if policy is not None:
            if placement_policy is not None:
                # Refuse the ambiguity rather than let the bundle fingerprint
                # (which keys plan caches and trace memos, and is printed by
                # reports) misdescribe the placement actually installed.
                raise ValueError(
                    "pass either placement_policy or a policy bundle, not both; "
                    "to customise one seam, build a PolicyBundle with the "
                    "desired placement policy"
                )
            self.set_policy(policy)
        if fabric is not None:
            self.set_fabric(fabric)

    @property
    def planner(self):
        """The configuration planner (owned by the orchestrator)."""
        return self.orchestrator.planner

    # ------------------------------------------------------------------ #
    # Control-plane policy
    # ------------------------------------------------------------------ #
    def set_policy(self, policy: PolicyLike) -> PolicyBundle:
        """Install a control-plane policy bundle on every decision seam.

        Accepts a :class:`~repro.policies.bundles.PolicyBundle`, a registered
        bundle name, or ``None`` for the ``default`` bundle.  Placement takes
        effect on the allocator, scheduling on the configuration planner and
        the task mapper.  The planner's decision cache is keyed by the policy
        fingerprint, so switching bundles on a live runtime can never replay
        another policy's cached plans.
        """
        bundle = resolve_bundle(policy)
        self.policy = bundle
        self.cluster_manager.allocator.policy = bundle.placement
        self.orchestrator.planner.scheduling_policy = bundle.scheduling
        self.orchestrator.mapper.scheduling_policy = bundle.scheduling
        if self.fabric is not None:
            self._attach_fabric_to_placement()
        return bundle

    # ------------------------------------------------------------------ #
    # Cluster fabric
    # ------------------------------------------------------------------ #
    def set_fabric(self, fabric: "FabricTopology | str | None") -> Optional[FabricTopology]:
        """Attach (or detach, with ``None``) the cluster interconnect model.

        Accepts a :class:`~repro.fabric.FabricTopology`, a registered profile
        name, or a ``FabricTopology.to_dict`` mapping.  Subsequent executors
        charge inter-stage payloads against the fabric's links, the planner's
        decision cache keys on the fabric fingerprint, and a locality-aware
        placement policy in the installed bundle is handed the topology so it
        can see rack boundaries.
        """
        topology = fabric_of(fabric)
        self.fabric = topology
        self.orchestrator.planner.fabric = topology
        self._attach_fabric_to_placement()
        return topology

    def _attach_fabric_to_placement(self) -> None:
        policies = [self.cluster_manager.allocator.policy]
        if self.policy is not None and self.policy.placement not in policies:
            policies.append(self.policy.placement)
        for policy in policies:
            attach = getattr(policy, "attach_fabric", None)
            if attach is not None:
                attach(self.fabric)

    def quality_controller(self) -> QualityController:
        """A quality controller over this runtime's profiles, using the
        installed bundle's quality-adaptation policy."""
        return QualityController(
            self.profile_store,
            policy=self.policy.quality if self.policy is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Cluster dynamics
    # ------------------------------------------------------------------ #
    def attach_dynamics(
        self, dynamics: "ClusterDynamics | DynamicsConfig | None"
    ) -> Optional[ClusterDynamics]:
        """Install a disruption schedule (spot windows, failures, autoscale)
        on this runtime's engine and cluster manager.

        Accepts a :class:`~repro.cluster.dynamics.DynamicsConfig` (wrapped in
        a fresh :class:`~repro.cluster.dynamics.ClusterDynamics`) or an
        uninstalled ``ClusterDynamics``.  Subsequent submissions register
        their executors with it, so preempted/failed nodes requeue or replan
        the affected tasks instead of stalling.
        """
        if dynamics is None:
            return None
        if isinstance(dynamics, DynamicsConfig):
            dynamics = ClusterDynamics(dynamics)
        if not dynamics.installed:
            dynamics.install(self.engine, self.cluster_manager)
        self.dynamics = dynamics
        # Surface the disruption-log version to policies via PlanContext.
        self.orchestrator.planner.dynamics_version_source = lambda: dynamics.log.version
        return dynamics

    def make_replanner(
        self,
        constraint_set: ConstraintSet,
        overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None,
        spec_digest: str = "",
    ):
        """Per-interface replanning hook for disrupted executors."""
        overrides = overrides or {}

        def replan(interface: AgentInterface):
            stats = self.cluster_manager.stats()
            return self.orchestrator.planner.plan_interface(
                interface,
                constraint_set,
                stats,
                override=overrides.get(interface),
                spec_digest=spec_digest,
            )

        return replan

    # ------------------------------------------------------------------ #
    # Job submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        job: Job,
        overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None,
        keep_warm: bool = False,
        server_pool: Optional[ServerPool] = None,
    ) -> JobResult:
        """Run ``job`` to completion and return its result and metrics."""
        if self.policy is not None and self.policy.overrides:
            # Bundle-pinned choices apply to every submission; explicit
            # per-call overrides win on conflicting interfaces.
            merged: Dict[AgentInterface, PlannerOverride] = dict(self.policy.overrides)
            if overrides:
                merged.update(overrides)
            overrides = merged
        submit_time = self.engine.now
        stats = self.cluster_manager.stats()
        orchestration = self.orchestrator.prepare(job, cluster_stats=stats, overrides=overrides)

        pool = server_pool or ServerPool(self.cluster_manager, self.library)
        trace = ExecutionTrace(label=job.job_id)
        dag_latency = orchestration.decomposition_latency_s or calibration.DAG_CREATION_SECONDS
        trace.add(
            task_id=f"{job.job_id}/orchestration",
            task_name="job decomposition (orchestrator LLM)",
            category="Orchestration",
            start=submit_time,
            end=submit_time + dag_latency,
            cpu_cores=1,
            cpu_utilization=0.1,
            metadata={"workflow": job.job_id},
        )

        dynamics = self.dynamics
        executor = WorkflowExecutor(
            engine=self.engine,
            cluster_manager=self.cluster_manager,
            library=self.library,
            plan=orchestration.plan,
            server_pool=pool,
            trace=trace,
            workflow_id=job.job_id,
            replanner=(
                self.make_replanner(
                    job.constraint_set(), overrides, spec_digest=job.spec_digest
                )
                if dynamics is not None
                else None
            ),
            stop_when_finished=dynamics is not None,
            fabric=self.fabric,
            **self.executor_options,
        )
        if dynamics is not None:
            dynamics.register_executor(executor)
        try:
            results = executor.execute(orchestration.graph, delay=dag_latency)
        except ExecutionError:
            # Give up cleanly: cancel the workflow's in-flight events and
            # release everything it holds, so later jobs on the shared
            # engine never see its zombies; tear down the per-job pool
            # exactly as the success path would.
            executor.abort()
            if dynamics is not None:
                dynamics.job_failed(executor)
            if not keep_warm and server_pool is None:
                pool.teardown_all()
            raise
        if dynamics is not None:
            dynamics.job_finished(executor)
        finished_at = executor.finished_at if executor.finished_at is not None else self.engine.now

        result = self._build_result(
            job=job,
            orchestration=orchestration,
            results=results,
            trace=trace,
            pool=pool,
            started_at=submit_time,
            finished_at=finished_at,
            transfers=executor.transfer_summary(),
        )
        if not keep_warm and server_pool is None:
            pool.teardown_all()
        return result

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        job: Job,
        orchestration: OrchestrationResult,
        results: Dict[str, AgentResult],
        trace: ExecutionTrace,
        pool: ServerPool,
        started_at: float,
        finished_at: float,
        transfers: Optional[Dict[str, float]] = None,
    ) -> JobResult:
        provisioned_gpus = pool.total_gpus()
        accountant = EnergyAccountant(
            gpu_power=self.cluster.nodes[0].gpu_spec.power,
            cpu_power_per_core_w=get_cpu_spec().active_w_per_core,
        )
        energy = accountant.account(
            trace, provisioned_gpus=provisioned_gpus, window=(started_at, finished_at)
        )
        cost = self._estimate_cost(trace, pool, finished_at - started_at)
        output = self._collect_output(orchestration, results)
        quality = self._estimate_quality(job, orchestration, output)
        transfer = transfers or {}

        return JobResult(
            job_id=job.job_id,
            output=output,
            task_results=results,
            makespan_s=finished_at - started_at,
            started_at=started_at,
            finished_at=finished_at,
            energy=energy,
            cost=cost,
            quality=quality,
            trace=trace,
            plan=orchestration.plan,
            graph=orchestration.graph,
            react_trace=orchestration.react_trace,
            provisioned_gpus=provisioned_gpus,
            transfer_s=float(transfer.get("transfer_s", 0.0)),
            transferred_bytes=int(transfer.get("transferred_bytes", 0)),
            cross_rack_bytes=int(transfer.get("cross_rack_bytes", 0)),
            transfer_wh=float(transfer.get("transfer_wh", 0.0)),
            transfer_events=int(transfer.get("transfer_events", 0)),
        )

    def _estimate_cost(self, trace: ExecutionTrace, pool: ServerPool, duration_s: float) -> float:
        gpu_spec = self.cluster.nodes[0].gpu_spec
        cpu_spec = get_cpu_spec()
        cost = 0.0
        for handle in pool.handles():
            cost += handle.gpus * gpu_spec.cost_per_hour * duration_s / SECONDS_PER_HOUR
            cost += (
                handle.instance.cpu_cores
                * cpu_spec.cost_per_core_hour
                * duration_s
                / SECONDS_PER_HOUR
            )
        for interval in trace:
            if interval.gpu_count == 0 and interval.cpu_cores > 0:
                cost += (
                    interval.cpu_cores
                    * cpu_spec.cost_per_core_hour
                    * interval.duration
                    / SECONDS_PER_HOUR
                )
            agent_name = interval.metadata.get("agent")
            if agent_name and agent_name in self.library:
                implementation = self.library.get(str(agent_name))
                if getattr(implementation, "external", False):
                    cost += getattr(implementation, "cost_per_request", 0.0)
        return cost

    @staticmethod
    def _collect_output(
        orchestration: OrchestrationResult, results: Dict[str, AgentResult]
    ) -> Dict[str, object]:
        output: Dict[str, object] = {}
        for task in orchestration.graph.leaves():
            result = results.get(task.task_id)
            if result is None:
                continue
            output.update(result.output)
        return output

    def _estimate_quality(
        self,
        job: Job,
        orchestration: OrchestrationResult,
        output: Dict[str, object],
    ) -> float:
        planned = cascade_quality(orchestration.plan.stage_qualities())
        answer = str(output.get("answer", ""))
        ground_truth = self._ground_truth_objects(job)
        if answer and ground_truth:
            measured = score_object_listing_answer(answer, ground_truth)
            return min(planned, measured) if planned else measured
        return planned

    @staticmethod
    def _ground_truth_objects(job: Job) -> List[str]:
        objects: List[str] = []
        for item in job.inputs:
            if isinstance(item, SyntheticVideo):
                for obj in item.all_objects():
                    if obj not in objects:
                        objects.append(obj)
            elif isinstance(item, dict) and "scenes" in item:
                for scene in item["scenes"]:
                    for obj in scene.get("objects", []):
                        if obj not in objects:
                            objects.append(obj)
        return objects
