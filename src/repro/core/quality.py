"""End-to-end workflow quality estimation.

The paper's §5 ("Quantifying and Controlling Quality") observes that model
interactions cause cascading effects: an error early in the workflow
propagates.  We model end-to-end quality as the product of per-stage
qualities (a stage can only preserve, never repair, upstream losses), and
provide a concrete scorer for the Video Understanding job's final answer
against the workload generator's ground truth.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Mapping, Sequence


def cascade_quality(stage_qualities: Mapping[str, float]) -> float:
    """Combine per-stage qualities into an end-to-end estimate.

    Empty input yields 0.0 (an unplanned workflow has no quality claim).
    """
    if not stage_qualities:
        return 0.0
    quality = 1.0
    for stage, value in stage_qualities.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"stage {stage!r} quality must be in [0, 1]: {value}")
        quality *= value
    return quality


def most_impactful_stage(stage_qualities: Mapping[str, float]) -> str:
    """The stage whose quality loss hurts the end-to-end result the most.

    Used to "narrow the search space by identifying stages with the greatest
    impact on cost and accuracy" (§5): improving the lowest-quality stage
    gives the largest end-to-end gain.
    """
    if not stage_qualities:
        raise ValueError("no stages given")
    return min(stage_qualities, key=lambda stage: stage_qualities[stage])


def score_object_listing_answer(answer: str, ground_truth_objects: Sequence[str]) -> float:
    """Recall of ground-truth objects mentioned in the final answer text."""
    if not ground_truth_objects:
        return 1.0
    answer_lower = answer.lower()
    found = sum(1 for obj in ground_truth_objects if obj.lower() in answer_lower)
    return found / len(ground_truth_objects)


def token_recall(produced: Iterable[str], ground_truth: Sequence[str]) -> float:
    """Fraction of ground-truth tokens present in the produced tokens."""
    if not ground_truth:
        return 1.0
    produced_set = {token.lower() for token in produced}
    found = sum(1 for token in ground_truth if token.lower() in produced_set)
    return found / len(ground_truth)


def extract_listed_objects(answer: str) -> Sequence[str]:
    """Parse an "Objects shown or mentioned: a, b, c." style answer."""
    match = re.search(r":\s*(.+?)\.?$", answer.strip())
    if not match:
        return ()
    return tuple(part.strip() for part in match.group(1).split(",") if part.strip())
