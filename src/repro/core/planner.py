"""Configuration planning: choosing models, hardware, and execution modes.

This is the paper's §3.2 "Model/Tool Selection" + "Resource Allocation" +
"Execution Paths" combined into one profile-driven search (§3.3 notes the
full space explodes, so Murakkab prunes it greedily):

for every agent interface the task graph needs, collect the profiled
(implementation, hardware, mode) triples that meet the quality floor and
any explicit override, then delegate the actual choice to the installed
:class:`~repro.policies.base.SchedulingPolicy` through the shared
:class:`~repro.policies.context.PlanContext`.  The stock
:class:`~repro.policies.scheduling.DefaultSchedulingPolicy` reproduces the
original greedy hierarchy-of-objectives search (rank by primary constraint,
prefer warm models when nearly tied, break ties with the secondaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import calibration
from repro.agents.base import AgentInterface, ExecutionMode, HardwareConfig
from repro.agents.library import AgentLibrary
from repro.agents.profiles import ExecutionProfile
from repro.cluster.telemetry_exchange import ResourceStatsMessage
from repro.core.constraints import ConstraintSet
from repro.core.dag import TaskGraph
from repro.policies.base import SchedulingPolicy
from repro.policies.context import PlanContext
from repro.policies.scheduling import DefaultSchedulingPolicy
from repro.profiling.store import ProfileStore


class PlanningError(RuntimeError):
    """Raised when no feasible configuration exists for an interface."""


@dataclass(frozen=True)
class PlannerOverride:
    """Pin parts of the configuration for one interface (used by experiments
    that sweep a single lever, e.g. the Table-2 STT configurations)."""

    agent_name: Optional[str] = None
    config: Optional[HardwareConfig] = None
    mode: Optional[ExecutionMode] = None
    max_concurrency: Optional[int] = None

    def matches(self, profile: ExecutionProfile) -> bool:
        if self.agent_name is not None and profile.agent_name != self.agent_name:
            return False
        if self.config is not None and profile.config != self.config:
            return False
        if self.mode is not None and profile.mode != self.mode:
            return False
        return True


@dataclass(frozen=True)
class PlanAssignment:
    """The chosen configuration for one agent interface."""

    interface: AgentInterface
    agent_name: str
    config: HardwareConfig
    mode: ExecutionMode
    profile: ExecutionProfile
    #: How many tasks of this interface may run concurrently under this
    #: assignment (1 for a single serving instance; >1 for CPU task lanes).
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")

    @property
    def uses_gpu(self) -> bool:
        return self.config.gpus > 0

    def describe(self) -> str:
        return (
            f"{self.interface.value}: {self.agent_name} on {self.config.describe()} "
            f"[{self.mode.describe()}] x{self.max_concurrency}"
        )


@dataclass
class ExecutionPlan:
    """Per-interface assignments for one workflow execution."""

    constraint_set: ConstraintSet
    assignments: Dict[AgentInterface, List[PlanAssignment]] = field(default_factory=dict)

    def add(self, assignment: PlanAssignment) -> None:
        self.assignments.setdefault(assignment.interface, []).append(assignment)

    def assignments_for(self, interface: AgentInterface) -> List[PlanAssignment]:
        try:
            return self.assignments[interface]
        except KeyError:
            raise KeyError(f"plan has no assignment for {interface.value!r}") from None

    def primary_assignment(self, interface: AgentInterface) -> PlanAssignment:
        return self.assignments_for(interface)[0]

    def chosen_agents(self) -> Dict[AgentInterface, str]:
        return {
            interface: assignments[0].agent_name
            for interface, assignments in self.assignments.items()
        }

    def gpu_assignments(self) -> List[PlanAssignment]:
        """Assignments that require a long-lived GPU serving instance."""
        return [
            assignment
            for assignments in self.assignments.values()
            for assignment in assignments
            if assignment.uses_gpu
        ]

    def stage_qualities(self) -> Dict[str, float]:
        return {
            interface.value: max(a.profile.quality for a in assignments)
            for interface, assignments in self.assignments.items()
        }

    def describe(self) -> str:
        lines = [f"ExecutionPlan ({self.constraint_set.describe()})"]
        for assignments in self.assignments.values():
            for assignment in assignments:
                lines.append(f"  {assignment.describe()}")
        return "\n".join(lines)


class ConfigurationPlanner:
    """Profile-driven configuration search behind a pluggable policy.

    Repeated submissions of similar workflows re-plan the same interfaces
    under the same constraints against equivalent cluster snapshots, so the
    planner memoizes per-interface assignments keyed by
    ``(interface, constraint set, override, stats digest, policy
    fingerprint, workflow-spec digest)``.  The policy fingerprint in the key is what lets one
    long-lived service switch bundles without ever replaying another
    policy's cached decisions.  The cache is invalidated whenever the
    profile store changes (profile added, agent retired) via the store's
    mutation :attr:`~ProfileStore.version`, and can be dropped explicitly
    with :meth:`invalidate_cache`.
    """

    #: Upper bound on memoized assignments (FIFO eviction beyond this).
    PLAN_CACHE_MAX = 4096

    def __init__(
        self,
        profile_store: ProfileStore,
        library: AgentLibrary,
        max_cpu_cores_per_agent: int = calibration.STT_CPU_TOTAL_CORES,
        enable_plan_cache: bool = True,
        scheduling_policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        if max_cpu_cores_per_agent <= 0:
            raise ValueError("max_cpu_cores_per_agent must be positive")
        self.profile_store = profile_store
        self.library = library
        self.max_cpu_cores_per_agent = max_cpu_cores_per_agent
        self.enable_plan_cache = enable_plan_cache
        #: The scheduling policy every per-interface decision goes through;
        #: reassigned by ``MurakkabRuntime.set_policy`` when a bundle is
        #: installed (cached decisions stay keyed to the old fingerprint).
        self.scheduling_policy = scheduling_policy or DefaultSchedulingPolicy()
        #: Optional provider of the cluster-dynamics disruption version,
        #: surfaced to policies through :class:`PlanContext` (installed by
        #: ``MurakkabRuntime.attach_dynamics``).
        self.dynamics_version_source: Optional[Callable[[], int]] = None
        #: Attached cluster interconnect model (set by
        #: ``MurakkabRuntime.set_fabric``); surfaced to policies through
        #: :class:`PlanContext` and folded into the decision-cache key.
        self.fabric = None
        self._plan_cache: Dict[tuple, PlanAssignment] = {}
        self._plan_cache_store_version = profile_store.version
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        # The installed policy's fingerprint, recomputed only when the policy
        # object is swapped (it is read on every cache lookup).
        self._fingerprint_of: Optional[SchedulingPolicy] = None
        self._policy_fingerprint = ""

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(
        self,
        graph: TaskGraph,
        constraint_set: ConstraintSet,
        cluster_stats: Optional[ResourceStatsMessage] = None,
        overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None,
        spec_digest: str = "",
    ) -> ExecutionPlan:
        """Choose one configuration per interface appearing in ``graph``.

        ``spec_digest`` is the submitting job's workflow-spec digest (empty
        for hand-built jobs); it namespaces the memoized decisions so two
        specs can never replay each other's cached choices.
        """
        overrides = overrides or {}
        plan = ExecutionPlan(constraint_set=constraint_set)
        stats_digest = cluster_stats.planning_digest() if cluster_stats is not None else None
        for interface in graph.interfaces():
            override = overrides.get(interface)
            assignment = self._cached_assignment(
                interface, constraint_set, cluster_stats, stats_digest, override,
                spec_digest,
            )
            plan.add(assignment)
        return plan

    def plan_interface(
        self,
        interface: AgentInterface,
        constraint_set: ConstraintSet,
        cluster_stats: Optional[ResourceStatsMessage] = None,
        override: Optional[PlannerOverride] = None,
        spec_digest: str = "",
    ) -> PlanAssignment:
        """Choose a configuration for one interface in isolation.

        This is the replanning entry point: when cluster dynamics (spot
        preemption, server failure) revoke a workflow's serving instance and
        the planned configuration no longer fits the shrunken cluster, the
        executor asks for a fresh assignment against *current* stats without
        re-decomposing the job.
        """
        stats_digest = (
            cluster_stats.planning_digest() if cluster_stats is not None else None
        )
        return self._cached_assignment(
            interface, constraint_set, cluster_stats, stats_digest, override, spec_digest
        )

    def invalidate_cache(self) -> None:
        """Drop memoized assignments (e.g. after out-of-band store edits)."""
        self._plan_cache.clear()
        self._plan_cache_store_version = self.profile_store.version

    def export_plan_cache(self) -> List[tuple]:
        """Memoized ``(key, assignment)`` pairs, insertion-ordered.

        The persistence surface for the warm-state cache: keys are
        self-validating (each embeds the constraint set, cluster-stats
        digest, policy fingerprint, and spec digest it was decided under),
        so an exported entry can be re-imported into any planner over the
        same profile store and only ever hit for an identical decision.
        """
        return list(self._plan_cache.items())

    def import_plan_cache(self, entries) -> int:
        """Seed the decision cache from :meth:`export_plan_cache` output.

        Entries beyond :attr:`PLAN_CACHE_MAX` or with malformed keys are
        skipped.  Returns how many entries were imported.
        """
        imported = 0
        for entry in entries:
            if len(self._plan_cache) >= self.PLAN_CACHE_MAX:
                break
            key, assignment = entry
            if not isinstance(key, tuple):
                continue
            self._plan_cache[key] = assignment
            imported += 1
        if imported:
            self._plan_cache_store_version = self.profile_store.version
        return imported

    @property
    def plan_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters for benchmarks and regression tests."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "size": len(self._plan_cache),
        }

    def _cached_assignment(
        self,
        interface: AgentInterface,
        constraint_set: ConstraintSet,
        cluster_stats: Optional[ResourceStatsMessage],
        stats_digest: Optional[tuple],
        override: Optional[PlannerOverride],
        spec_digest: str = "",
    ) -> PlanAssignment:
        if not self.enable_plan_cache:
            profile = self._select_profile(
                interface, constraint_set, cluster_stats, override, spec_digest
            )
            return self._assignment_from_profile(interface, profile, override)
        if self._plan_cache_store_version != self.profile_store.version:
            self.invalidate_cache()
        if self._fingerprint_of is not self.scheduling_policy:
            self._fingerprint_of = self.scheduling_policy
            self._policy_fingerprint = self.scheduling_policy.fingerprint()
        # max_cpu_cores_per_agent is a public attribute callers mutate after
        # construction (it shapes assignment concurrency), so it must be
        # part of the key rather than assumed constant.  The disruption-log
        # version is in the key because PlanContext hands it to the policy:
        # a policy conditioning on cluster volatility must be re-consulted
        # after every disruption, even one that restores an identical stats
        # digest.  (Policies reading PlanContext fields outside the planning
        # digest and the dynamics version must disable the plan cache.)
        # The spec digest namespaces entries per submitting workflow spec:
        # hand-built jobs (digest "") share entries exactly as before, while
        # spec-compiled jobs can never replay a decision cached for a
        # different spec (e.g. under a spec-conditioned policy).
        cache_key = (
            interface,
            constraint_set,
            stats_digest,
            override,
            self.max_cpu_cores_per_agent,
            self._policy_fingerprint,
            self._dynamics_version(),
            spec_digest,
            self.fabric.fingerprint() if self.fabric is not None else "",
        )
        assignment = self._plan_cache.get(cache_key)
        if assignment is not None:
            self._plan_cache_hits += 1
            return assignment
        self._plan_cache_misses += 1
        profile = self._select_profile(
            interface, constraint_set, cluster_stats, override, spec_digest
        )
        assignment = self._assignment_from_profile(interface, profile, override)
        if len(self._plan_cache) >= self.PLAN_CACHE_MAX:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        self._plan_cache[cache_key] = assignment
        return assignment

    def rank_candidates(
        self,
        interface: AgentInterface,
        constraint_set: ConstraintSet,
    ) -> List[ExecutionProfile]:
        """All acceptable profiles for an interface, best-first (for reports)."""
        candidates = [
            p
            for p in self.profile_store.profiles_for(interface)
            if p.quality >= constraint_set.quality_floor
        ]
        return self.scheduling_policy.rank(
            interface, candidates, self._plan_context(constraint_set, None)
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _dynamics_version(self) -> int:
        if self.dynamics_version_source is not None:
            return self.dynamics_version_source()
        return 0

    def _plan_context(
        self,
        constraint_set: ConstraintSet,
        cluster_stats: Optional[ResourceStatsMessage],
        spec_digest: str = "",
    ) -> PlanContext:
        return PlanContext(
            constraint_set=constraint_set,
            cluster_stats=cluster_stats,
            profile_store=self.profile_store,
            dynamics_version=self._dynamics_version(),
            spec_digest=spec_digest,
            fabric=self.fabric,
        )

    def _select_profile(
        self,
        interface: AgentInterface,
        constraint_set: ConstraintSet,
        cluster_stats: Optional[ResourceStatsMessage],
        override: Optional[PlannerOverride],
        spec_digest: str = "",
    ) -> ExecutionProfile:
        candidates = self.profile_store.profiles_for(interface)
        if not candidates:
            raise PlanningError(f"no profiled implementation for {interface.value!r}")
        if override is not None:
            candidates = [p for p in candidates if override.matches(p)]
            if not candidates:
                raise PlanningError(
                    f"override for {interface.value!r} matches no profiled configuration"
                )
        acceptable = [p for p in candidates if p.quality >= constraint_set.quality_floor]
        if not acceptable:
            raise PlanningError(
                f"no configuration for {interface.value!r} meets quality floor "
                f"{constraint_set.quality_floor:.2f} "
                f"(best available: {max(p.quality for p in candidates):.2f})"
            )
        chosen = self.scheduling_policy.select_profile(
            interface,
            acceptable,
            self._plan_context(constraint_set, cluster_stats, spec_digest),
        )
        if chosen is None:
            raise PlanningError(
                f"policy {self.scheduling_policy.name!r} rejected every acceptable "
                f"configuration for {interface.value!r}"
            )
        return chosen

    def _assignment_from_profile(
        self,
        interface: AgentInterface,
        profile: ExecutionProfile,
        override: Optional[PlannerOverride],
    ) -> PlanAssignment:
        config = profile.config
        if override is not None and override.max_concurrency is not None:
            max_concurrency = override.max_concurrency
        elif config.is_cpu_only:
            # CPU tools run as per-task lanes carved out of a bounded core
            # budget (the paper's "64 CPU cores" Speech-to-Text deployment).
            max_concurrency = max(1, self.max_cpu_cores_per_agent // config.cpu_cores)
        else:
            # A GPU (or hybrid) configuration is a single serving instance;
            # its requests serialise on the instance.
            max_concurrency = 1
        return PlanAssignment(
            interface=interface,
            agent_name=profile.agent_name,
            config=config,
            mode=profile.mode,
            profile=profile,
            max_concurrency=max_concurrency,
        )
