"""Workflow execution on the simulated cluster.

The executor drives a :class:`~repro.core.dag.TaskGraph` to completion on the
discrete-event engine under an :class:`~repro.core.planner.ExecutionPlan`:

* GPU (and hybrid GPU+CPU) assignments are backed by long-lived serving
  instances deployed through the cluster manager; tasks queue on their
  instance and serialise on its capacity,
* CPU-only assignments allocate cores per task, bounded by the assignment's
  concurrency (the "64 CPU cores for Speech-to-Text" style budget),
* dataflow outputs of completed tasks are merged into their consumers'
  inputs, so agents produce functional end-to-end results,
* every execution is recorded as trace intervals (Figure-3-style timelines),
  and progress is announced to the cluster manager so it can rebalance
  (workflow-aware cluster management).

The same executor also runs the OmAgent-style baseline: ``sequential=True``
forces one task at a time in deterministic topological order, reproducing
the rigid imperative execution the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.agents.base import (
    AgentImplementation,
    AgentInterface,
    AgentResult,
    ExecutionEstimate,
    WorkUnit,
)
from repro.agents.library import AgentLibrary
from repro.agents.synthetic import stable_embedding
from repro.cluster.allocator import MODEL_OWNER_PREFIX, Allocation, ResourceRequest
from repro.cluster.manager import ClusterManager, ModelInstance
from repro.cluster.telemetry_exchange import WorkflowAnnouncement
from repro.core.dag import TaskGraph
from repro.core.planner import ExecutionPlan, PlanAssignment, PlanningError
from repro.core.task import Task, TaskState
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace

#: Display categories used for Figure-3-style timelines.
DISPLAY_CATEGORIES: Dict[AgentInterface, str] = {
    AgentInterface.SCENE_SUMMARIZATION: "LLM (Text)",
    AgentInterface.QUESTION_ANSWERING: "LLM (Text)",
    AgentInterface.TEXT_GENERATION: "LLM (Text)",
    AgentInterface.SPEECH_TO_TEXT: "Speech-to-Text",
    AgentInterface.EMBEDDING: "LLM (Embeddings)",
    AgentInterface.OBJECT_DETECTION: "Object Detection",
    AgentInterface.FRAME_EXTRACTION: "Frame Extraction",
    AgentInterface.VECTOR_DB: "Vector DB",
    AgentInterface.SENTIMENT_ANALYSIS: "Sentiment",
    AgentInterface.WEB_SEARCH: "Web Search",
    AgentInterface.CALCULATION: "Tool",
}


def display_category(interface: AgentInterface) -> str:
    """Human-readable timeline category for an interface."""
    return DISPLAY_CATEGORIES.get(interface, interface.value.replace("_", " ").title())


class ExecutionError(RuntimeError):
    """Raised when a workflow cannot make progress (e.g. cluster too small).

    When raised from inside an executor's event callbacks, :attr:`executor`
    names the workflow that failed so multi-tenant coordinators can abort
    just that workflow and keep the shared engine running.
    """

    executor: Optional["WorkflowExecutor"] = None


@dataclass
class ServerHandle:
    """One deployed serving instance shared by all tasks routed to it."""

    group: str
    assignment_config_key: str
    instance: ModelInstance
    slots: int = 1
    active: int = 0
    #: Set when the instance is gone (its node was lost, or it was evicted
    #: to make room); lanes holding the handle must redeploy before use.
    dead: bool = False
    #: Executors with work queued on this instance, waiting for a slot.
    #: Notified (in registration order) whenever a slot frees, so a workflow
    #: whose tasks all target a busy shared instance is woken by *another*
    #: workflow's completion instead of stalling forever.
    waiters: List[object] = field(default_factory=list)

    @property
    def gpu_ids(self) -> Tuple[str, ...]:
        return self.instance.allocation.gpu_ids

    @property
    def node_id(self) -> str:
        return self.instance.allocation.node_id

    @property
    def gpus(self) -> int:
        return self.instance.gpus

    def has_capacity(self) -> bool:
        return self.active < self.slots


class ServerPool:
    """Deploys and shares serving instances keyed by (deployment group, config).

    Implementations that declare the same ``server_group`` (e.g. NVLM
    summarisation and NVLM question answering) share one instance, exactly as
    one model server would serve both request types in a real deployment.
    Pools can be shared across workflows to get the paper's multi-tenant
    resource multiplexing.
    """

    def __init__(self, cluster_manager: ClusterManager, library: AgentLibrary) -> None:
        self.cluster_manager = cluster_manager
        self.library = library
        self._handles: Dict[Tuple[str, str], ServerHandle] = {}

    def ensure(self, assignment: PlanAssignment) -> ServerHandle:
        """Return (deploying if necessary) the instance for an assignment."""
        implementation = self.library.get(assignment.agent_name)
        group = implementation.deployment_group
        key = (group, assignment.config.describe())
        handle = self._handles.get(key)
        if handle is not None:
            return handle
        instance = self.cluster_manager.deploy_model(
            agent_name=group,
            gpus=assignment.config.gpus,
            cpu_cores=assignment.config.cpu_cores,
            gpu_generation=assignment.config.gpu_generation,
        )
        handle = ServerHandle(
            group=group,
            assignment_config_key=assignment.config.describe(),
            instance=instance,
            slots=assignment.max_concurrency,
        )
        self._handles[key] = handle
        return handle

    def handles(self) -> List[ServerHandle]:
        return list(self._handles.values())

    def signature(self) -> Tuple[Tuple[str, str], ...]:
        """Deterministic fingerprint of the deployed (group, config) set.

        Changes exactly when a serving instance is deployed or torn down —
        the invalidation signal for schedulers that memoize steady-state
        behaviour against a warm pool.
        """
        return tuple(sorted(self._handles.keys()))

    def total_gpus(self) -> int:
        return sum(handle.gpus for handle in self._handles.values())

    def invalidate_node(self, node_id: str) -> List[ServerHandle]:
        """Drop handles whose instance lived on a lost node.

        The instances were already deregistered by
        :meth:`~repro.cluster.manager.ClusterManager.handle_node_loss`; this
        removes the stale handles so the next :meth:`ensure` redeploys on
        surviving capacity.  Returns the dropped handles.
        """
        dropped = []
        for key, handle in list(self._handles.items()):
            if handle.node_id == node_id:
                handle.dead = True
                dropped.append(self._handles.pop(key))
        return dropped

    def evict_idle_for(self, assignment: PlanAssignment) -> bool:
        """Tear down idle instances until ``assignment`` could deploy.

        The paper's reclamation example (§3.2): give Whisper's idle GPU to
        Llama once no Speech-to-Text work is running.  Idle handles are
        evicted in deterministic key order, stopping as soon as the cluster
        can satisfy the assignment's shape; returns whether it now can.
        Evicted handles are flagged :attr:`ServerHandle.dead` so lanes still
        holding them redeploy instead of scheduling onto released devices.
        """
        request = ResourceRequest(
            owner=f"{MODEL_OWNER_PREFIX}{assignment.agent_name}",
            gpus=assignment.config.gpus,
            cpu_cores=assignment.config.cpu_cores,
            gpu_generation=assignment.config.gpu_generation,
        )
        for key in sorted(self._handles):
            if self.cluster_manager.can_satisfy(request):
                break
            handle = self._handles[key]
            if handle.active or handle.dead:
                continue
            handle.dead = True
            del self._handles[key]
            self.cluster_manager.teardown_model(handle.instance)
        return self.cluster_manager.can_satisfy(request)

    def teardown_all(self) -> None:
        for handle in self._handles.values():
            self.cluster_manager.teardown_model(handle.instance)
        self._handles.clear()


@dataclass
class _Lane:
    """Dispatch state for one plan assignment."""

    assignment: PlanAssignment
    implementation: AgentImplementation
    server: Optional[ServerHandle] = None
    active: int = 0
    queue: List[Task] = field(default_factory=list)

    def backlog(self) -> int:
        return self.active + len(self.queue)

    def has_capacity(self) -> bool:
        if self.server is not None:
            return self.server.has_capacity()
        return self.active < self.assignment.max_concurrency


class WorkflowExecutor:
    """Runs one task graph to completion on the simulation engine."""

    def __init__(
        self,
        engine: SimulationEngine,
        cluster_manager: ClusterManager,
        library: AgentLibrary,
        plan: ExecutionPlan,
        server_pool: Optional[ServerPool] = None,
        trace: Optional[ExecutionTrace] = None,
        sequential: bool = False,
        announce: bool = True,
        workflow_id: str = "workflow",
        incremental_dispatch: bool = True,
        on_finish: Optional[Callable[["WorkflowExecutor"], None]] = None,
        replanner: Optional[Callable[[AgentInterface], PlanAssignment]] = None,
        stop_when_finished: bool = False,
        fabric=None,
    ) -> None:
        self.engine = engine
        self.cluster_manager = cluster_manager
        self.library = library
        self.plan = plan
        self.server_pool = server_pool or ServerPool(cluster_manager, library)
        self.trace = trace if trace is not None else ExecutionTrace(label=workflow_id)
        self.sequential = sequential
        self.announce = announce
        self.workflow_id = workflow_id
        #: When True, readiness and progress counters are maintained
        #: incrementally as tasks complete instead of rescanning the whole
        #: graph on every dispatch/announcement.  Scheduling decisions are
        #: identical either way; the flag exists so the unoptimized
        #: reference path (repro.baselines.unoptimized) can reproduce the
        #: original rescan behaviour for differential benchmarks.
        self.incremental_dispatch = incremental_dispatch
        #: Invoked exactly once, when the last task completes.  Multi-job
        #: coordinators use this to account each job's completion as it
        #: happens (streaming accounting) instead of scanning every executor
        #: after the engine drains.
        self.on_finish = on_finish
        #: Asked for a fresh :class:`PlanAssignment` when cluster dynamics
        #: revoke a lane's serving instance and the planned configuration no
        #: longer fits the shrunken cluster (set by the runtime when a
        #: dynamics schedule is attached).
        self.replanner = replanner
        #: When True, :meth:`execute` stops stepping the engine as soon as
        #: this workflow finishes instead of draining the queue.  Required
        #: under cluster dynamics, whose events extend to the end of the
        #: disruption horizon; the default drain keeps the optimized
        #: single-workflow hot loop.
        self.stop_when_finished = stop_when_finished

        self.results: Dict[str, AgentResult] = {}
        self._graph: Optional[TaskGraph] = None
        self._lanes: Dict[AgentInterface, List[_Lane]] = {}
        self._order_index: Dict[str, int] = {}
        self._global_active = 0
        self._retry_scheduled = False
        self._pending_preds: Dict[str, int] = {}
        self._ready_pool: List[Task] = []
        self._completed_count = 0
        self._pending_by_interface: Dict[AgentInterface, int] = {}
        #: task_id -> (completion event, task, lane, allocation): the tasks
        #: currently executing, so a node loss can cancel and requeue them.
        self._inflight: Dict[str, tuple] = {}
        self._aborted = False
        #: How many node-loss events actually disrupted this workflow.
        self.disruptions = 0
        #: Tasks requeued and lane replans forced by those disruptions.
        self.requeued_tasks = 0
        self.replans = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Attached :class:`~repro.fabric.FabricTopology`, or ``None`` for
        #: the historical free-data-movement behaviour.  With a fabric,
        #: every dependent-stage edge whose payload costs time on the links
        #: delays the consumer and is accounted below; zero-cost edges
        #: (same node, or an uncontended fabric) change nothing at all.
        self.fabric = fabric
        #: ``task_id -> (node_id, payload_bytes, finished_at)`` of completed
        #: producers, recorded only when a fabric is attached.
        self._output_sites: Dict[str, Tuple[str, int, float]] = {}
        #: Transfer accounting over *costed* edges (``transfer_time > 0``).
        self.transfer_events = 0
        self.transferred_bytes = 0
        self.cross_rack_bytes = 0
        self.transfer_seconds = 0.0
        self.transfer_wh = 0.0

    #: How long to wait before re-trying dispatch when the cluster could not
    #: satisfy a per-task allocation (another workflow may free resources).
    ALLOCATION_RETRY_S = 1.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def start(self, graph: TaskGraph, delay: float = 0.0) -> None:
        """Deploy serving instances and schedule the first dispatch pass."""
        graph.validate()
        self._graph = graph
        self._order_index = {
            task.task_id: index for index, task in enumerate(graph.topological_order())
        }
        if self.incremental_dispatch:
            # Seed the counters from current task states so graphs arriving
            # with some tasks already COMPLETED account correctly.
            self._completed_count = sum(
                1 for task in graph if task.state is TaskState.COMPLETED
            )
            self._pending_by_interface = dict(graph.pending_counts_by_interface())
            self._pending_preds = {}
            self._ready_pool = []
            for task in graph:
                degree = sum(
                    1
                    for p in graph.predecessors(task.task_id)
                    if p.state is not TaskState.COMPLETED
                )
                self._pending_preds[task.task_id] = degree
                if degree == 0 and task.state is TaskState.PENDING:
                    self._ready_pool.append(task)
        self._build_lanes(graph)
        if self.announce:
            self._announce()
        self.engine.schedule(delay, self._begin)

    def execute(self, graph: TaskGraph, delay: float = 0.0) -> Dict[str, AgentResult]:
        """Run ``graph`` to completion (drives the engine) and return results."""
        self.start(graph, delay=delay)
        if self.stop_when_finished:
            # Dynamics events (spot windows, failures, autoscale ticks) may
            # be queued far past this workflow's completion; step only until
            # our own finish so the engine clock stays at the job boundary.
            while self.finished_at is None and self.engine.step():
                pass
        else:
            self.engine.run()
        if not graph.is_complete():
            incomplete = [t.task_id for t in graph if t.state is not TaskState.COMPLETED]
            raise self._execution_error(
                f"workflow {self.workflow_id!r} stalled with incomplete tasks: {incomplete[:5]}"
            )
        return self.results

    @property
    def makespan(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _build_lanes(self, graph: TaskGraph) -> None:
        for interface in graph.interfaces():
            assignments = self.plan.assignments_for(interface)
            lanes: List[_Lane] = []
            for assignment in assignments:
                implementation = self.library.get(assignment.agent_name)
                server = None
                if assignment.uses_gpu:
                    if self.replanner is not None:
                        # Elastic mode: the cluster may have shrunk since
                        # planning, so a full up-front deployment can be
                        # collectively infeasible.  Deploy what fits now
                        # (evicting idle instances if needed) and leave the
                        # rest to the dispatch-time repair path, which
                        # redeploys or replans stage by stage.
                        server = self._try_deploy(assignment)
                    else:
                        server = self.server_pool.ensure(assignment)
                lanes.append(
                    _Lane(assignment=assignment, implementation=implementation, server=server)
                )
            self._lanes[interface] = lanes

    def _begin(self) -> None:
        self.started_at = self.engine.now
        self._dispatch()

    def abort(self) -> None:
        """Cancel in-flight work and release everything this workflow holds.

        Called when the workflow is given up on (an unrecoverable
        :class:`ExecutionError` under cluster dynamics) while other work
        shares the engine: without this, the dead workflow's completion
        events keep firing, its server slots stay occupied, and its CPU
        allocations leak into every subsequent job.
        """
        self._aborted = True
        released_servers = []
        for task_id, (event, task, lane, allocation) in list(self._inflight.items()):
            event.cancel()
            lane.active -= 1
            if lane.server is not None:
                lane.server.active -= 1
                if lane.server not in released_servers:
                    released_servers.append(lane.server)
            self._global_active -= 1
            if allocation is not None:
                self.cluster_manager.release(allocation)
            task.mark(TaskState.CANCELLED)
        self._inflight.clear()
        for lanes in self._lanes.values():
            for lane in lanes:
                lane.queue.clear()
                if lane.server is not None and self in lane.server.waiters:
                    lane.server.waiters.remove(self)
        self._ready_pool = []
        # The cancelled completions will never fire, so the slots they just
        # freed must wake waiting executors here or they stall forever.
        for server in released_servers:
            if server.waiters:
                self._notify_server_waiters(server)
        if self.announce:
            self.cluster_manager.retract_workflow(self.workflow_id)

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #
    def _dispatch(self) -> None:
        if self._aborted:
            return
        assert self._graph is not None
        if self.incremental_dispatch:
            ready = self._ready_pool
            self._ready_pool = []
        else:
            ready = self._graph.ready_tasks()
        ready.sort(key=lambda task: self._order_index[task.task_id])
        for task in ready:
            lanes = self._lanes[task.interface]
            lane = min(lanes, key=lambda l: l.backlog())
            lane.queue.append(task)
            lane.queue.sort(key=lambda t: self._order_index[t.task_id])
            task.mark(TaskState.READY)
        made_progress = False
        for lanes in self._lanes.values():
            for lane in lanes:
                made_progress |= self._pump(lane)
        if (
            not made_progress
            and self._global_active == 0
            and not self._is_complete()
            and not any(lane.queue for lanes in self._lanes.values() for lane in lanes)
            and not (self._ready_pool if self.incremental_dispatch else self._graph.ready_tasks())
        ):
            # Nothing queued, nothing running, nothing ready, graph unfinished:
            # dependencies can never be satisfied.
            raise self._execution_error(
                f"workflow {self.workflow_id!r} deadlocked: no runnable tasks remain"
            )

    def _execution_error(self, message: str) -> ExecutionError:
        error = ExecutionError(message)
        error.executor = self
        return error

    def _is_complete(self) -> bool:
        assert self._graph is not None
        if self.incremental_dispatch:
            return self._completed_count == len(self._graph)
        return self._graph.is_complete()

    def _pump(self, lane: _Lane) -> bool:
        """Start as many queued tasks on ``lane`` as capacity allows."""
        started = False
        while lane.queue and lane.has_capacity():
            if self.sequential and self._global_active > 0:
                break
            if self.sequential and not self._is_next_in_order(lane.queue[0]):
                break
            if lane.server is not None and lane.server.dead:
                # The instance behind this handle is gone (node loss, or
                # evicted to make room elsewhere); never schedule onto it.
                lane.server = None
            if lane.server is None and lane.assignment.uses_gpu:
                # The lane's serving instance was lost to a preemption or
                # failure; redeploy (or replan) before any task can start.
                if not self._repair_lane(lane):
                    if self._global_active == 0 and not self._retry_scheduled:
                        self._retry_scheduled = True
                        self.engine.schedule(self.ALLOCATION_RETRY_S, self._retry_dispatch)
                    break
            task = lane.queue[0]
            allocation: Optional[Allocation] = None
            if lane.server is None:
                cpu_cores = lane.assignment.config.cpu_cores
                if cpu_cores > self.cluster_manager.cluster.total_cpu_cores:
                    raise self._execution_error(
                        f"task {task.task_id} needs {cpu_cores} CPU cores but the cluster "
                        f"only has {self.cluster_manager.cluster.total_cpu_cores}"
                    )
                request = ResourceRequest(
                    owner=f"{self.workflow_id}:{task.task_id}",
                    cpu_cores=cpu_cores,
                )
                allocation = self.cluster_manager.allocate(request)
                if allocation is None:
                    # Resources are held elsewhere (possibly by another
                    # workflow sharing the cluster); retry after a short wait
                    # unless one of our own completions will re-trigger
                    # dispatch anyway.
                    if self._global_active == 0 and not self._retry_scheduled:
                        self._retry_scheduled = True
                        self.engine.schedule(self.ALLOCATION_RETRY_S, self._retry_dispatch)
                    break
            lane.queue.pop(0)
            self._start_task(task, lane, allocation)
            started = True
        if (
            lane.queue
            and lane.server is not None
            and not lane.server.has_capacity()
            and self not in lane.server.waiters
        ):
            lane.server.waiters.append(self)
        return started

    #: Upper bound on consecutive allocation retries before declaring the
    #: workflow stuck (prevents an un-runnable workflow from spinning the
    #: event loop forever).
    MAX_ALLOCATION_RETRIES = 10_000

    def _retry_dispatch(self) -> None:
        self._retry_scheduled = False
        if self._aborted:
            return
        self._retry_count = getattr(self, "_retry_count", 0) + 1
        if self._retry_count > self.MAX_ALLOCATION_RETRIES:
            raise self._execution_error(
                f"workflow {self.workflow_id!r} could not obtain resources after "
                f"{self.MAX_ALLOCATION_RETRIES} retries"
            )
        assert self._graph is not None
        if not self._is_complete():
            self._dispatch()

    def _notify_server_waiters(self, server: ServerHandle) -> None:
        """Wake executors queued behind the slot this completion just freed."""
        waiters = server.waiters
        server.waiters = []
        for waiter in waiters:
            if waiter is self:
                # Our own dispatch runs at the end of _complete_task anyway.
                continue
            self.engine.schedule(0.0, waiter._resume_after_server_release)

    def _resume_after_server_release(self) -> None:
        if self._aborted:
            return
        if self._graph is not None and not self._is_complete():
            self._dispatch()

    # ------------------------------------------------------------------ #
    # Cluster-dynamics recovery (spot preemption / server failure)
    # ------------------------------------------------------------------ #
    def on_node_loss(self, node_id: str) -> None:
        """React to a lost node: requeue in-flight tasks, repair lanes.

        Called by :class:`~repro.cluster.dynamics.ClusterDynamics` after the
        cluster manager reclaimed the node's allocations and the server pool
        dropped its handles.  Tasks running on the node (on its serving
        instance, or holding a CPU allocation there) are cancelled and put
        back on their lane's queue; lanes whose server died redeploy lazily
        on the next dispatch (replanning through :attr:`replanner` if the
        planned configuration no longer fits).
        """
        if self._aborted or self._graph is None or self._is_complete():
            return
        # Stale handles must leave the pool whether or not the dynamics
        # layer watches it (per-submit pools are only reachable from here);
        # invalidation is idempotent, so a watched pool is fine too.
        self.server_pool.invalidate_node(node_id)
        affected = False
        for task_id, (event, task, lane, allocation) in list(self._inflight.items()):
            on_lost_server = lane.server is not None and lane.server.node_id == node_id
            on_lost_cpu = allocation is not None and allocation.node_id == node_id
            if not (on_lost_server or on_lost_cpu):
                continue
            event.cancel()
            del self._inflight[task_id]
            lane.active -= 1
            if lane.server is not None:
                lane.server.active -= 1
            self._global_active -= 1
            # No allocation to release here: a task holds one only on a
            # serverless (CPU) lane, so matching on_lost_cpu means the
            # node's reclaim already revoked it.
            task.requeue()
            task.mark(TaskState.READY)
            lane.queue.append(task)
            lane.queue.sort(key=lambda t: self._order_index[t.task_id])
            self.requeued_tasks += 1
            affected = True
        for lanes in self._lanes.values():
            for lane in lanes:
                if lane.server is not None and lane.server.node_id == node_id:
                    lane.server = None
                    affected = True
        if affected:
            self.disruptions += 1
            self.engine.schedule(0.0, self._resume_after_server_release)

    def _repair_lane(self, lane: _Lane) -> bool:
        """Re-acquire a serving instance for a lane whose server was lost.

        First redeploys the planned configuration (evicting idle instances
        if that is what it takes — the paper's reclamation lever); if the
        shrunken cluster cannot fit it, asks :attr:`replanner` (when
        provided) for a fresh assignment against current cluster stats.
        Returns ``False`` when neither works — the caller retries after
        ``ALLOCATION_RETRY_S``.
        """
        server = self._try_deploy(lane.assignment)
        if server is not None:
            lane.server = server
            return True
        if self.replanner is None:
            return False
        try:
            assignment = self.replanner(lane.assignment.interface)
        except PlanningError:
            return False
        if assignment is None or assignment.config == lane.assignment.config:
            return False
        if assignment.uses_gpu:
            server = self._try_deploy(assignment)
            if server is None:
                return False
        else:
            server = None
        planned = self.plan.assignments.get(assignment.interface)
        if planned and lane.assignment in planned:
            planned[planned.index(lane.assignment)] = assignment
        lane.assignment = assignment
        lane.implementation = self.library.get(assignment.agent_name)
        lane.server = server
        self.replans += 1
        return True

    def _try_deploy(self, assignment: PlanAssignment) -> Optional[ServerHandle]:
        """Deploy ``assignment``, evicting idle instances if needed."""
        try:
            return self.server_pool.ensure(assignment)
        except RuntimeError:
            pass
        if not self.server_pool.evict_idle_for(assignment):
            return None
        try:
            return self.server_pool.ensure(assignment)
        except RuntimeError:
            return None

    def _is_next_in_order(self, task: Task) -> bool:
        """In sequential (baseline) mode, only the globally next pending task
        in topological order may start."""
        assert self._graph is not None
        pending = [
            t
            for t in self._graph
            if t.state in (TaskState.PENDING, TaskState.READY)
        ]
        if not pending:
            return True
        next_task = min(pending, key=lambda t: self._order_index[t.task_id])
        return next_task.task_id == task.task_id

    def _any_other_active_or_pending(self, lane: _Lane) -> bool:
        for lanes in self._lanes.values():
            for other in lanes:
                if other is lane:
                    continue
                if other.active > 0 or other.queue:
                    return True
        return False

    def _start_task(self, task: Task, lane: _Lane, allocation: Optional[Allocation]) -> None:
        assignment = lane.assignment
        estimate = lane.implementation.estimate(task.work, assignment.config, assignment.mode)
        transfer_s = 0.0
        if self.fabric is not None:
            transfer_s = self._absorb_transfers(task, lane, allocation)
        task.mark(TaskState.RUNNING)
        task.started_at = self.engine.now + transfer_s
        lane.active += 1
        if lane.server is not None:
            lane.server.active += 1
        self._global_active += 1
        # The residual transfer wait folds into the task's single completion
        # event, so attaching a fabric adds no engine events at all.
        event = self.engine.schedule(
            transfer_s + estimate.seconds, self._complete_task, task, lane, allocation, estimate
        )
        self._inflight[task.task_id] = (event, task, lane, allocation)

    def _absorb_transfers(
        self, task: Task, lane: _Lane, allocation: Optional[Allocation]
    ) -> float:
        """Account ``task``'s costed input transfers; return the residual wait.

        Each payload starts moving the moment its producer finishes and the
        transfers proceed in parallel, so the consumer waits only until the
        *latest* payload arrives.  Edges the fabric moves for free
        (``transfer_time == 0``: same node, or an unlimited link) are neither
        delayed nor counted — that keeps the zero-cost ``uniform`` profile
        byte-identical to running with no fabric attached.
        """
        assert self._graph is not None
        fabric = self.fabric
        if lane.server is not None:
            dest = lane.server.node_id
        elif allocation is not None:
            dest = allocation.node_id
        else:
            dest = ""
        if not dest:
            return 0.0
        now = self.engine.now
        ready_at = now
        for pred in self._graph.predecessors(task.task_id):
            site = self._output_sites.get(pred.task_id)
            if site is None:
                continue
            src_node, payload_bytes, available_at = site
            seconds = fabric.transfer_time(src_node, dest, payload_bytes)
            if seconds <= 0.0:
                continue
            self.transfer_events += 1
            self.transferred_bytes += payload_bytes
            self.transfer_seconds += seconds
            self.transfer_wh += fabric.transfer_energy_wh(payload_bytes)
            if fabric.is_cross_rack(src_node, dest):
                self.cross_rack_bytes += payload_bytes
            arrived_at = available_at + seconds
            if arrived_at > ready_at:
                ready_at = arrived_at
        extra = ready_at - now
        if extra > 0.0:
            # A zero-device interval: visible on the Gantt timeline, free in
            # the compute-energy integral (transfer energy is accounted
            # separately from the fabric's per-GB figure).
            self.trace.add(
                task_id=f"{task.task_id}/transfer",
                task_name=f"input transfer for {task.task_id}",
                category="Transfer",
                start=now,
                end=ready_at,
                node_id=dest,
                metadata={"stage": task.stage, "workflow": self.workflow_id},
            )
        return extra

    def _complete_task(
        self,
        task: Task,
        lane: _Lane,
        allocation: Optional[Allocation],
        estimate: ExecutionEstimate,
    ) -> None:
        assert self._graph is not None
        self._inflight.pop(task.task_id, None)
        task.finished_at = self.engine.now
        self._record_trace(task, lane, allocation, estimate)
        if self.fabric is not None:
            if lane.server is not None:
                site_node = lane.server.node_id
            elif allocation is not None:
                site_node = allocation.node_id
            else:
                site_node = ""
            if site_node:
                self._output_sites[task.task_id] = (
                    site_node,
                    lane.implementation.output_payload_bytes,
                    self.engine.now,
                )

        merged_work = self._compose_work(task)
        result = lane.implementation.execute(merged_work, lane.assignment.config, lane.assignment.mode)
        self.results[task.task_id] = result
        task.mark(TaskState.COMPLETED)

        lane.active -= 1
        if lane.server is not None:
            lane.server.active -= 1
            if lane.server.waiters:
                self._notify_server_waiters(lane.server)
        self._global_active -= 1
        if allocation is not None:
            self.cluster_manager.release(allocation)

        if self.incremental_dispatch:
            self._completed_count += 1
            self._pending_by_interface[task.interface] -= 1
            pending_preds = self._pending_preds
            for successor in self._graph.successors(task.task_id):
                remaining = pending_preds[successor.task_id] - 1
                pending_preds[successor.task_id] = remaining
                if remaining == 0 and successor.state is TaskState.PENDING:
                    self._ready_pool.append(successor)

        if self.announce:
            self._announce()
        if self._is_complete():
            self.finished_at = self.engine.now
            if self.announce:
                self.cluster_manager.retract_workflow(self.workflow_id)
            self.engine.mark(self.workflow_id)
            if self.on_finish is not None:
                self.on_finish(self)
        else:
            self._dispatch()

    # ------------------------------------------------------------------ #
    # Trace + telemetry
    # ------------------------------------------------------------------ #
    def transfer_summary(self) -> Dict[str, float]:
        """The costed-transfer counters in :class:`JobResult` field order."""
        return {
            "transfer_s": self.transfer_seconds,
            "transferred_bytes": self.transferred_bytes,
            "cross_rack_bytes": self.cross_rack_bytes,
            "transfer_wh": self.transfer_wh,
            "transfer_events": self.transfer_events,
        }

    def _record_trace(
        self,
        task: Task,
        lane: _Lane,
        allocation: Optional[Allocation],
        estimate: ExecutionEstimate,
    ) -> None:
        if lane.server is not None:
            gpu_ids = lane.server.gpu_ids
            node_id = lane.server.node_id
            cpu_cores = lane.assignment.config.cpu_cores
        else:
            gpu_ids = allocation.gpu_ids if allocation else ()
            node_id = allocation.node_id if allocation else ""
            cpu_cores = allocation.cpu_cores if allocation else lane.assignment.config.cpu_cores
        self.trace.add(
            task_id=task.task_id,
            task_name=task.description,
            category=display_category(task.interface),
            start=task.started_at if task.started_at is not None else self.engine.now,
            end=self.engine.now,
            node_id=node_id,
            gpu_ids=tuple(gpu_ids),
            cpu_cores=cpu_cores,
            gpu_utilization=estimate.gpu_utilization,
            cpu_utilization=estimate.cpu_utilization,
            metadata={
                "agent": lane.assignment.agent_name,
                "stage": task.stage,
                "workflow": self.workflow_id,
            },
        )

    def _announce(self) -> None:
        assert self._graph is not None
        if self.incremental_dispatch:
            pending = self._pending_by_interface
            completed = self._completed_count
        else:
            pending = self._graph.pending_counts_by_interface()
            completed = len(self._graph.completed())
        announcement = WorkflowAnnouncement(
            workflow_id=self.workflow_id,
            timestamp=self.engine.now,
            upcoming_demand={
                iface.value: count for iface, count in pending.items() if count > 0
            },
            completed_tasks=completed,
            total_tasks=len(self._graph),
            critical_path=tuple(self._graph.stage_order()),
        )
        self.cluster_manager.announce_workflow(announcement)

    # ------------------------------------------------------------------ #
    # Dataflow composition
    # ------------------------------------------------------------------ #
    def _compose_work(self, task: Task) -> WorkUnit:
        """Merge predecessor outputs into the task's input payload."""
        assert self._graph is not None
        payload = dict(task.work.payload)
        for predecessor in self._graph.predecessors(task.task_id):
            result = self.results.get(predecessor.task_id)
            if result is None:
                continue
            self._merge_output(payload, predecessor.interface, result)
        if task.interface is AgentInterface.QUESTION_ANSWERING:
            self._prepare_question_answering(payload)
        if task.interface is AgentInterface.TEXT_GENERATION:
            self._prepare_text_generation(payload)
        return WorkUnit(kind=task.work.kind, quantity=task.work.quantity, payload=payload)

    @staticmethod
    def _merge_output(payload: Dict[str, object], interface: AgentInterface, result: AgentResult) -> None:
        output = result.output
        if interface is AgentInterface.SPEECH_TO_TEXT:
            payload["transcript"] = output.get("transcript", "")
        elif interface is AgentInterface.OBJECT_DETECTION:
            payload.setdefault("objects", [])
            payload["objects"] = list(payload["objects"]) + [
                obj for obj in output.get("objects", []) if obj not in payload["objects"]
            ]
        elif interface is AgentInterface.SCENE_SUMMARIZATION:
            texts = list(payload.get("texts", []))
            texts.append(output.get("summary", ""))
            payload["texts"] = texts
            summaries = list(payload.get("summaries", []))
            summaries.append(output.get("summary", ""))
            payload["summaries"] = summaries
            objects = list(payload.get("objects", []))
            for obj in output.get("objects", []):
                if obj not in objects:
                    objects.append(obj)
            payload["objects"] = objects
        elif interface is AgentInterface.EMBEDDING:
            payload["embeddings"] = list(payload.get("embeddings", [])) + list(
                output.get("embeddings", [])
            )
            payload["texts"] = list(payload.get("texts", [])) + list(output.get("texts", []))
        elif interface is AgentInterface.VECTOR_DB:
            payload["collection"] = output.get("collection", payload.get("collection"))
        elif interface is AgentInterface.WEB_SEARCH:
            snippets = [r.get("snippet", "") for r in output.get("results", [])]
            payload["context"] = list(payload.get("context", [])) + snippets
        elif interface is AgentInterface.SENTIMENT_ANALYSIS:
            payload["labels"] = list(payload.get("labels", [])) + list(output.get("labels", []))
            payload["texts"] = list(payload.get("texts", [])) + list(output.get("texts", []))
        elif interface is AgentInterface.QUESTION_ANSWERING:
            payload["context"] = list(payload.get("context", [])) + [output.get("answer", "")]
        elif interface is AgentInterface.CALCULATION:
            payload["context"] = list(payload.get("context", [])) + [str(output.get("value", ""))]
        elif interface is AgentInterface.TEXT_GENERATION:
            payload["context"] = list(payload.get("context", [])) + [output.get("text", "")]

    def _prepare_question_answering(self, payload: Dict[str, object]) -> None:
        """Gather context for the final answer: retrieved scenes + detected objects."""
        summaries: List[str] = []
        objects: List[str] = []
        for result in self.results.values():
            if result.interface is AgentInterface.SCENE_SUMMARIZATION:
                summaries.append(str(result.output.get("summary", "")))
                for obj in result.output.get("objects", []):
                    if obj not in objects:
                        objects.append(obj)
        if summaries and not payload.get("context"):
            payload["context"] = summaries
        if objects:
            existing = list(payload.get("objects", []))
            for obj in objects:
                if obj not in existing:
                    existing.append(obj)
            payload["objects"] = existing
        collection = payload.get("collection")
        question = str(payload.get("question", ""))
        if collection and question and "vector-db" in self.library:
            vectordb = self.library.get("vector-db")
            store = getattr(vectordb, "collection", None)
            if callable(store) and len(vectordb.collection(str(collection))):
                matches = vectordb.collection(str(collection)).query(
                    stable_embedding(question), top_k=int(payload.get("top_k", 5))
                )
                payload["context"] = [record.text for record, _score in matches]

    def _prepare_text_generation(self, payload: Dict[str, object]) -> None:
        prompt = str(payload.get("prompt", ""))
        labels = payload.get("labels")
        context = payload.get("context")
        if labels:
            prompt += " | observed sentiments: " + ", ".join(str(label) for label in labels)
        if context:
            prompt += " | context: " + " ".join(str(c) for c in list(context)[:3])
        payload["prompt"] = prompt
