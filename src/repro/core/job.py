"""The declarative job API (paper Listing 2) and job results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.agents.base import AgentResult
from repro.core.constraints import (
    Constraint,
    ConstraintSet,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
)
from repro.sim.energy import EnergyBreakdown
from repro.sim.trace import ExecutionTrace

_job_counter = itertools.count()


@dataclass
class Job:
    """A declarative job: natural-language description, inputs, and constraints.

    Mirrors the paper's Listing 2::

        result = Job(description=desc, inputs=videos,
                     tasks=[t1, t2, t3],
                     constraints=MIN_COST).execute()

    ``tasks`` are optional hints; when absent or insufficient the orchestrator
    LLM decomposes the description itself.  ``quality_target`` is the result
    quality floor the runtime must respect while optimising for the
    constraint.
    """

    description: str
    inputs: Sequence[object] = ()
    tasks: Sequence[str] = ()
    constraints: Union[Constraint, ConstraintSet, Sequence[Constraint], None] = None
    quality_target: float = 0.0
    job_id: str = ""
    #: Content digest of the :class:`~repro.spec.ir.WorkflowSpec` this job
    #: was compiled from (empty for hand-built jobs).  Joins the planner's
    #: decision-cache key, so cached choices are namespaced per spec.
    spec_digest: str = ""
    #: Admission priority class (``high``/``normal``/``low``): who is shed
    #: first under overload.  Does not change how an admitted job is planned.
    priority: str = DEFAULT_PRIORITY
    #: End-to-end deadline SLO in seconds from arrival (``None`` = best
    #: effort); admission control sheds jobs whose deadline cannot be met.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.description:
            raise ValueError("a job needs a natural-language description")
        if not 0.0 <= self.quality_target <= 1.0:
            raise ValueError(f"quality_target must be in [0, 1]: {self.quality_target}")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {self.priority!r}; classes: {PRIORITY_CLASSES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive: {self.deadline_s}")
        if not self.job_id:
            self.job_id = f"job-{next(_job_counter)}"

    def constraint_set(self) -> ConstraintSet:
        """The normalised constraint set (priority order + quality floor)."""
        return ConstraintSet.of(self.constraints, quality_floor=self.quality_target)

    def execute(self, runtime: Optional[object] = None, **submit_kwargs) -> "JobResult":
        """Execute this job on ``runtime`` (a fresh default one if omitted).

        This is the Listing-2 convenience entry point; long-lived callers
        should build a :class:`~repro.core.runtime.MurakkabRuntime` once and
        call ``runtime.submit(job)`` so profiles and warm models are reused.
        """
        if runtime is None:
            # Imported here to avoid a circular import at module load time.
            from repro.core.runtime import MurakkabRuntime

            runtime = MurakkabRuntime()
        return runtime.submit(self, **submit_kwargs)


@dataclass
class JobResult:
    """Everything the runtime reports about one executed job."""

    job_id: str
    #: Final answer / output payload (e.g. the object listing for the paper's
    #: Video Understanding job).
    output: Dict[str, object] = field(default_factory=dict)
    #: Per-task functional results keyed by task id.
    task_results: Dict[str, AgentResult] = field(default_factory=dict)
    #: End-to-end completion time in seconds (simulated).
    makespan_s: float = 0.0
    #: Simulated start/end timestamps of the workflow.
    started_at: float = 0.0
    finished_at: float = 0.0
    #: GPU/CPU energy accounting for the workflow window.
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: Monetary cost of the resources held over the workflow window.
    cost: float = 0.0
    #: Estimated end-to-end result quality in [0, 1].
    quality: float = 0.0
    #: Execution trace (for Figure-3-style timelines).
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    #: The execution plan chosen by the planner (None for baseline runs that
    #: bypass planning).
    plan: Optional[object] = None
    #: The task graph that was executed.
    graph: Optional[object] = None
    #: The orchestrator LLM's decomposition trace.
    react_trace: Optional[object] = None
    #: Number of GPUs provisioned for the workflow window.
    provisioned_gpus: int = 0
    #: Costed inter-stage data movement over the attached fabric (all zero
    #: when no fabric is attached, or when the fabric moves data for free).
    transfer_s: float = 0.0
    transferred_bytes: int = 0
    cross_rack_bytes: int = 0
    transfer_wh: float = 0.0
    transfer_events: int = 0

    @property
    def energy_wh(self) -> float:
        """GPU energy in Wh (the metric the paper's Table 2 reports)."""
        return self.energy.gpu_wh

    def compact_summary(self) -> Dict[str, float]:
        """The bounded per-job accounting record kept by services and
        trace reports (unrounded, so aggregates reconcile exactly)."""
        return {
            "makespan_s": self.makespan_s,
            "energy_wh": self.energy_wh,
            "cost": self.cost,
            "quality": self.quality,
        }

    def summary(self) -> Dict[str, object]:
        """A compact dictionary used by reports and benchmarks."""
        return {
            "job_id": self.job_id,
            "makespan_s": round(self.makespan_s, 2),
            "energy_wh": round(self.energy_wh, 2),
            "cost": round(self.cost, 4),
            "quality": round(self.quality, 4),
            "tasks": len(self.task_results),
            "provisioned_gpus": self.provisioned_gpus,
        }
