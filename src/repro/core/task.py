"""Task instances: the nodes of a workflow DAG."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.agents.base import AgentInterface, WorkUnit


class TaskState(enum.Enum):
    """Lifecycle of a task instance."""

    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELLED)


@dataclass
class Task:
    """One schedulable unit of work bound to an agent interface.

    ``stage`` names the decomposition stage this task was expanded from
    (e.g. ``"speech_to_text"``); ``metadata`` carries expansion context such
    as the scene or video identity, used for dependency wiring and data-flow
    composition.
    """

    task_id: str
    description: str
    interface: AgentInterface
    work: WorkUnit
    stage: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)
    state: TaskState = TaskState.PENDING
    #: Populated by the executor.
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many times the task was requeued after losing its resources
    #: (spot preemption / server failure).
    retries: int = 0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if not self.stage:
            self.stage = self.interface.value

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def requeue(self) -> None:
        """Return a dispatched task to PENDING after its resources were lost.

        The one sanctioned backwards transition: a spot preemption or server
        failure revokes the devices a READY/RUNNING task was using, so the
        executor puts it back in the queue to run again elsewhere.
        """
        if self.state is TaskState.COMPLETED:
            raise ValueError(f"cannot requeue completed task {self.task_id}")
        self.state = TaskState.PENDING
        self.started_at = None
        self.retries += 1

    def mark(self, state: TaskState) -> None:
        """Advance the task's state (no backwards transitions)."""
        order = [
            TaskState.PENDING,
            TaskState.READY,
            TaskState.RUNNING,
            TaskState.COMPLETED,
        ]
        if state in (TaskState.FAILED, TaskState.CANCELLED):
            self.state = state
            return
        if self.state in order and order.index(state) < order.index(self.state):
            raise ValueError(
                f"cannot move task {self.task_id} from {self.state} back to {state}"
            )
        self.state = state

    def __repr__(self) -> str:
        return (
            f"Task({self.task_id!r}, {self.interface.value}, state={self.state.value})"
        )
