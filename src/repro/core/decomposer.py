"""Job decomposition: from a declarative job to a task DAG.

The decomposer asks the (simulated) orchestrator LLM for the stage-level
decomposition of the job description, then expands each stage over the job's
inputs (one frame-extraction task per video, one transcription /
summarisation task per scene, one sentiment task per post, a single vector
database insertion, a single final answer, ...), and wires dataflow
dependencies between tasks at matching granularity.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents.base import AgentInterface, WorkUnit
from repro.core.dag import TaskGraph
from repro.core.job import Job
from repro.core.task import Task
from repro.llm.orchestrator_llm import DecomposedTask, OrchestratorLLM, ReActTrace
from repro.workloads.video import SyntheticVideo, generate_videos

_VIDEO_EXTENSIONS = (".mov", ".mp4", ".avi", ".mkv", ".webm")


def _looks_like_video(value: object) -> bool:
    return isinstance(value, str) and value.lower().endswith(_VIDEO_EXTENSIONS)


def _normalise_inputs(inputs: Sequence[object]) -> Tuple[List[dict], List[dict]]:
    """Split job inputs into video payloads and generic item payloads.

    String inputs that look like video files (the Listing-2 style
    ``["cats.mov", "formula_1.mov"]``) are materialised as synthetic videos
    with the paper's scene/frame statistics.
    """
    video_names = [value for value in inputs if _looks_like_video(value)]
    videos: List[dict] = []
    if video_names:
        videos.extend(v.as_payload() for v in generate_videos(count=len(video_names), names=video_names))
    items: List[dict] = []
    for value in inputs:
        if _looks_like_video(value):
            continue
        if isinstance(value, SyntheticVideo):
            videos.append(value.as_payload())
        elif isinstance(value, dict) and "scenes" in value:
            videos.append(value)
        elif isinstance(value, dict):
            items.append(value)
        else:
            items.append({"text": str(value)})
    return videos, items


class JobDecomposer:
    """Expands a :class:`~repro.core.job.Job` into a :class:`TaskGraph`."""

    def __init__(self, orchestrator_llm: Optional[OrchestratorLLM] = None) -> None:
        self.orchestrator_llm = orchestrator_llm or OrchestratorLLM()
        #: Class used to build task graphs (swapped by the unoptimized
        #: reference path in repro.baselines.unoptimized).
        self.graph_factory = TaskGraph

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def decompose(self, job: Job) -> Tuple[TaskGraph, ReActTrace]:
        """Build the task graph for ``job`` and return it with the LLM trace."""
        videos, items = _normalise_inputs(job.inputs)
        input_names = [v["name"] for v in videos] + [
            str(item.get("id", item.get("text", "item"))) for item in items
        ]
        stages, trace = self.orchestrator_llm.decompose(
            description=job.description,
            task_hints=job.tasks,
            inputs=input_names,
            constraint=job.constraint_set().describe(),
        )
        graph = self.expand_stages(job, stages)
        return graph, trace

    def expand_stages(self, job: Job, stages: Sequence[DecomposedTask]) -> TaskGraph:
        """Expand stage-level decomposition over the job's inputs into a DAG.

        Also used by the imperative (Listing-1 style) workflow API, which
        defines its stages explicitly instead of asking the orchestrator LLM.
        """
        videos, items = _normalise_inputs(job.inputs)
        graph = self.graph_factory(workflow_id=job.job_id)
        stage_tasks: Dict[str, List[Task]] = {}
        counter = itertools.count()
        for stage in stages:
            tasks = self._expand_stage(job, stage, videos, items, counter)
            for task in tasks:
                graph.add_task(task)
            stage_tasks[stage.name] = tasks
        for stage in stages:
            for upstream_name in stage.depends_on:
                self._wire(graph, stage_tasks.get(upstream_name, []), stage_tasks[stage.name])
        graph.validate()
        return graph

    # ------------------------------------------------------------------ #
    # Stage expansion
    # ------------------------------------------------------------------ #
    def _expand_stage(
        self,
        job: Job,
        stage: DecomposedTask,
        videos: List[dict],
        items: List[dict],
        counter,
    ) -> List[Task]:
        scenes = [scene for video in videos for scene in video.get("scenes", [])]
        granularity = stage.granularity
        if granularity == "per_scene" and not scenes:
            granularity = "per_item" if items else "once"
        if granularity == "per_video" and not videos:
            granularity = "once"
        if granularity == "per_item" and not items:
            granularity = "once"

        make_id = lambda: f"{job.job_id}/{stage.name}/{next(counter)}"  # noqa: E731

        if granularity == "per_video":
            return [
                Task(
                    task_id=make_id(),
                    description=f"{stage.description} [{video['name']}]",
                    interface=stage.interface,
                    work=WorkUnit(kind="video", quantity=1.0, payload={"video": video}),
                    stage=stage.name,
                    metadata={"video": video["name"]},
                )
                for video in videos
            ]
        if granularity == "per_scene":
            return [
                Task(
                    task_id=make_id(),
                    description=f"{stage.description} [{scene['id']}]",
                    interface=stage.interface,
                    work=WorkUnit(kind="scene", quantity=1.0, payload={"scene": scene}),
                    stage=stage.name,
                    metadata={"scene_id": scene["id"], "video": scene["video"]},
                )
                for scene in scenes
            ]
        if granularity == "per_item":
            return [
                Task(
                    task_id=make_id(),
                    description=f"{stage.description} [{item.get('id', index)}]",
                    interface=stage.interface,
                    work=WorkUnit(
                        kind="item",
                        quantity=1.0,
                        payload={"item": item, "texts": [str(item.get("text", item))]},
                    ),
                    stage=stage.name,
                    metadata={"item_id": str(item.get("id", index))},
                )
                for index, item in enumerate(items)
            ]
        if granularity == "per_query":
            return [
                Task(
                    task_id=make_id(),
                    description=stage.description,
                    interface=stage.interface,
                    work=WorkUnit(
                        kind="query",
                        quantity=1.0,
                        payload={"query": job.description, "top_k": 3},
                    ),
                    stage=stage.name,
                    metadata={},
                )
            ]
        # "once" stages.
        payload, quantity = self._once_payload(job, stage, scenes, items)
        return [
            Task(
                task_id=make_id(),
                description=stage.description,
                interface=stage.interface,
                work=WorkUnit(kind="batch", quantity=quantity, payload=payload),
                stage=stage.name,
                metadata={},
            )
        ]

    def _once_payload(
        self,
        job: Job,
        stage: DecomposedTask,
        scenes: List[dict],
        items: List[dict],
    ) -> Tuple[dict, float]:
        unit_count = float(max(len(scenes) or len(items), 1))
        if stage.interface is AgentInterface.VECTOR_DB:
            return (
                {"operation": "insert", "collection": job.job_id},
                unit_count,
            )
        if stage.interface is AgentInterface.QUESTION_ANSWERING:
            return (
                {"question": job.description, "collection": job.job_id, "top_k": 5},
                1.0,
            )
        if stage.interface is AgentInterface.TEXT_GENERATION:
            return ({"prompt": job.description}, 1.0)
        if stage.interface is AgentInterface.CALCULATION:
            expression = next(
                (str(item.get("expression")) for item in items if "expression" in item),
                "0",
            )
            return ({"expression": expression}, 1.0)
        return ({"description": stage.description}, unit_count)

    # ------------------------------------------------------------------ #
    # Dependency wiring
    # ------------------------------------------------------------------ #
    def _wire(
        self, graph: TaskGraph, upstream: List[Task], downstream: List[Task]
    ) -> None:
        """Connect two stages' task lists at matching granularity."""
        if not upstream or not downstream:
            return
        for consumer in downstream:
            producers = self._matching_producers(upstream, consumer)
            for producer in producers:
                graph.add_dependency(producer.task_id, consumer.task_id)

    @staticmethod
    def _matching_producers(upstream: List[Task], consumer: Task) -> List[Task]:
        scene_id = consumer.metadata.get("scene_id")
        video = consumer.metadata.get("video")
        item_id = consumer.metadata.get("item_id")
        # Same-scene producers take precedence, then same-video, then same-item.
        if scene_id is not None:
            same_scene = [t for t in upstream if t.metadata.get("scene_id") == scene_id]
            if same_scene:
                return same_scene
        if video is not None:
            same_video = [t for t in upstream if t.metadata.get("video") == video]
            if same_video:
                return same_video
        if item_id is not None:
            same_item = [t for t in upstream if t.metadata.get("item_id") == item_id]
            if same_item:
                return same_item
        # Fall back to depending on every upstream task (fan-in).
        return list(upstream)
