"""Task-to-agent mapping and tool-call generation (paper §3.2)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.agents.base import AgentImplementation, AgentInterface
from repro.agents.library import AgentLibrary
from repro.core.dag import TaskGraph
from repro.core.task import Task
from repro.llm.tool_calling import ToolCall, ToolCallGenerator
from repro.policies.base import SchedulingPolicy
from repro.policies.scheduling import DefaultSchedulingPolicy


class TaskAgentMapper:
    """Maps tasks to candidate agent implementations and emits tool calls."""

    def __init__(
        self,
        library: AgentLibrary,
        tool_call_generator: Optional[ToolCallGenerator] = None,
        scheduling_policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        self.library = library
        self.tool_calls = tool_call_generator or ToolCallGenerator()
        #: Decides which implementation backs a task when the planner's
        #: chosen-agent map has no entry for its interface (the default takes
        #: the first library candidate, as the mapper always did).
        self.scheduling_policy = scheduling_policy or DefaultSchedulingPolicy()

    def candidates(self, task: Task) -> List[AgentImplementation]:
        """Implementations in the library that provide the task's interface."""
        implementations = self.library.implementations_for(task.interface)
        if not implementations:
            raise LookupError(
                f"no agent in the library implements {task.interface.value!r} "
                f"(needed by task {task.task_id})"
            )
        return implementations

    def tool_call(self, task: Task, implementation: AgentImplementation) -> ToolCall:
        """Synthesise the tool call the orchestrator LLM would emit."""
        metadata: Dict[str, object] = {"description": task.description}
        metadata.update(task.metadata)
        payload = task.work.payload
        metadata.update({k: v for k, v in payload.items() if not isinstance(v, dict)})
        scene = payload.get("scene")
        if isinstance(scene, dict):
            metadata.setdefault("file", scene.get("video"))
            metadata.setdefault("audio_seconds", scene.get("audio_seconds"))
            metadata.setdefault("frames", scene.get("frames"))
            metadata.setdefault("num_frames", len(scene.get("frames", [])))
        video = payload.get("video")
        if isinstance(video, dict):
            metadata.setdefault("file", video.get("name"))
            metadata.setdefault("end_time", video.get("duration_s"))
        return self.tool_calls.generate(implementation.schema(), metadata)

    def map_graph(
        self,
        graph: TaskGraph,
        chosen: Dict[AgentInterface, str],
    ) -> Dict[str, ToolCall]:
        """Tool calls for every task, using the planner's chosen agent names."""
        calls: Dict[str, ToolCall] = {}
        for task in graph:
            agent_name = chosen.get(task.interface)
            implementation = (
                self.library.get(agent_name)
                if agent_name is not None
                else self.scheduling_policy.choose_implementation(
                    task, self.candidates(task)
                )
            )
            calls[task.task_id] = self.tool_call(task, implementation)
        return calls
