"""Quality control for end-to-end workflows (paper §5).

The paper's discussion section raises two open problems this module
addresses in prototype form:

* **Quantifying cost/quality trade-offs end to end** — evaluating every
  combination of per-stage choices is "costly and impractical", so Murakkab
  needs to "narrow the search space by identifying stages with the greatest
  impact on cost and accuracy".  :class:`QualityController` ranks stages by
  their end-to-end quality impact and proposes the cheapest single-stage
  upgrade that meets a quality target.
* **Correctness checkpoints** — "hallucinations in early stages can derail
  workflows, highlighting the need for more correctness checkpoints".
  :func:`plan_checkpoints` places checkpoints after the stages whose failure
  would invalidate the most downstream work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.agents.base import AgentInterface
from repro.core.dag import TaskGraph
from repro.core.planner import ExecutionPlan, PlanAssignment
from repro.core.quality import cascade_quality
from repro.policies.base import QualityAdaptationPolicy
from repro.policies.quality import DefaultQualityPolicy
from repro.profiling.store import ProfileStore


@dataclass(frozen=True)
class StageImpact:
    """How much one stage limits end-to-end quality and what it costs."""

    interface: AgentInterface
    quality: float
    #: End-to-end quality of the plan as chosen.
    current_workflow_quality: float
    #: End-to-end quality if this stage alone were made perfect.
    quality_if_perfect: float
    cost_per_unit: float

    @property
    def improvement_headroom(self) -> float:
        """End-to-end quality gained by fixing only this stage."""
        return max(0.0, self.quality_if_perfect - self.current_workflow_quality)


@dataclass(frozen=True)
class UpgradeProposal:
    """A single-stage substitution that raises end-to-end quality."""

    interface: AgentInterface
    current: PlanAssignment
    upgraded_agent: str
    upgraded_quality: float
    extra_cost_per_unit: float
    projected_workflow_quality: float
    #: Overheads of the substitution on the other efficiency axes, so
    #: quality-adaptation policies can optimise latency or energy instead of
    #: cost (negative values mean the upgrade is also faster/leaner).
    extra_latency_s: float = 0.0
    extra_energy_wh: float = 0.0


@dataclass(frozen=True)
class Checkpoint:
    """A correctness checkpoint inserted after a stage."""

    after_interface: AgentInterface
    downstream_tasks_protected: int
    reason: str


class QualityController:
    """Analyses a plan's quality cascade and proposes targeted fixes.

    Which of the viable single-stage substitutions gets applied is decided
    by the installed :class:`~repro.policies.base.QualityAdaptationPolicy`;
    the stock :class:`~repro.policies.quality.DefaultQualityPolicy` picks the
    cheapest, as the controller always did.
    """

    def __init__(
        self,
        profile_store: ProfileStore,
        policy: Optional[QualityAdaptationPolicy] = None,
    ) -> None:
        self.profile_store = profile_store
        self.policy = policy or DefaultQualityPolicy()

    # ------------------------------------------------------------------ #
    # Impact analysis
    # ------------------------------------------------------------------ #
    def stage_impacts(self, plan: ExecutionPlan) -> List[StageImpact]:
        """Stages ordered by how much fixing them alone would help."""
        qualities = plan.stage_qualities()
        baseline = cascade_quality(qualities)
        impacts: List[StageImpact] = []
        for interface, assignments in plan.assignments.items():
            assignment = assignments[0]
            if_perfect = cascade_quality({**qualities, interface.value: 1.0})
            impacts.append(
                StageImpact(
                    interface=interface,
                    quality=assignment.profile.quality,
                    current_workflow_quality=baseline,
                    quality_if_perfect=if_perfect,
                    cost_per_unit=assignment.profile.cost,
                )
            )
        impacts.sort(key=lambda impact: impact.improvement_headroom, reverse=True)
        return impacts

    def most_impactful_interface(self, plan: ExecutionPlan) -> AgentInterface:
        """The stage whose quality loss hurts the end-to-end result the most."""
        impacts = self.stage_impacts(plan)
        if not impacts:
            raise ValueError("plan has no assignments")
        return impacts[0].interface

    # ------------------------------------------------------------------ #
    # Targeted upgrades
    # ------------------------------------------------------------------ #
    def propose_upgrade(
        self,
        plan: ExecutionPlan,
        quality_target: float,
    ) -> Optional[UpgradeProposal]:
        """Cheapest single-stage substitution that meets ``quality_target``.

        Returns ``None`` when the plan already meets the target or when no
        single-stage substitution can reach it (the caller then has to accept
        lower quality or upgrade multiple stages).
        """
        if not 0.0 <= quality_target <= 1.0:
            raise ValueError("quality_target must be in [0, 1]")
        qualities = plan.stage_qualities()
        current_quality = cascade_quality(qualities)
        if current_quality >= quality_target:
            return None

        proposals: List[UpgradeProposal] = []
        for interface, assignments in plan.assignments.items():
            assignment = assignments[0]
            for profile in self.profile_store.profiles_for(interface):
                if profile.quality <= assignment.profile.quality:
                    continue
                projected = cascade_quality(
                    {**qualities, interface.value: profile.quality}
                )
                if projected < quality_target:
                    continue
                proposals.append(
                    UpgradeProposal(
                        interface=interface,
                        current=assignment,
                        upgraded_agent=profile.agent_name,
                        upgraded_quality=profile.quality,
                        extra_cost_per_unit=profile.cost - assignment.profile.cost,
                        projected_workflow_quality=projected,
                        extra_latency_s=profile.latency_s - assignment.profile.latency_s,
                        extra_energy_wh=profile.energy_wh - assignment.profile.energy_wh,
                    )
                )
        chosen = self.policy.choose_upgrade(proposals, quality_target)
        if chosen is not None and not isinstance(chosen, UpgradeProposal):
            raise TypeError(
                f"quality policy {self.policy.name!r} returned {type(chosen)!r}, "
                "expected an UpgradeProposal or None"
            )
        return chosen

    # ------------------------------------------------------------------ #
    # Cost-quality frontier
    # ------------------------------------------------------------------ #
    def cost_quality_frontier(
        self, interface: AgentInterface
    ) -> List[Tuple[float, float]]:
        """(cost, quality) points on the Pareto frontier for one interface."""
        points = [
            (profile.cost, profile.quality)
            for profile in self.profile_store.pareto_front(interface)
        ]
        return sorted(points)


def plan_checkpoints(graph: TaskGraph, max_checkpoints: int = 2) -> List[Checkpoint]:
    """Place correctness checkpoints after the most load-bearing stages.

    A stage's "load" is the number of downstream tasks that would be invalid
    if its output were hallucinated; checkpoints go after the stages with the
    largest load, earliest stages first on ties.
    """
    if max_checkpoints <= 0:
        raise ValueError("max_checkpoints must be positive")
    graph.validate()
    stage_order = graph.stage_order()
    loads: Dict[str, int] = {}
    for stage in stage_order:
        stage_tasks = [task for task in graph if task.stage == stage]
        downstream: set = set()
        frontier = [task.task_id for task in stage_tasks]
        while frontier:
            current = frontier.pop()
            for successor in graph.successors(current):
                if successor.task_id not in downstream:
                    downstream.add(successor.task_id)
                    frontier.append(successor.task_id)
        loads[stage] = len(downstream)
    ranked = sorted(
        stage_order, key=lambda stage: (-loads[stage], stage_order.index(stage))
    )
    checkpoints: List[Checkpoint] = []
    for stage in ranked[:max_checkpoints]:
        if loads[stage] == 0:
            continue
        interface = next(task.interface for task in graph if task.stage == stage)
        checkpoints.append(
            Checkpoint(
                after_interface=interface,
                downstream_tasks_protected=loads[stage],
                reason=(
                    f"a hallucinated {stage} output would invalidate "
                    f"{loads[stage]} downstream tasks"
                ),
            )
        )
    return checkpoints
