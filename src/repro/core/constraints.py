"""Workflow-level constraints (paper §3.1).

The programmer "can also specify high-level constraints for performance or
quality (e.g. MIN_COST would let the system decide an execution strategy
that minimizes execution cost of the workflow, potentially in exchange for
latency).  In the future, we plan to support multiple constraints with a
priority ordering."  Both the single-constraint and the priority-ordered
forms are supported here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union


class Constraint(enum.Enum):
    """Optimisation objectives a job can request."""

    MIN_COST = "min_cost"
    MIN_LATENCY = "min_latency"
    MIN_ENERGY = "min_energy"
    MIN_POWER = "min_power"
    MAX_QUALITY = "max_quality"

    @property
    def objective(self) -> str:
        """The profile-store objective name this constraint minimises."""
        return _OBJECTIVES[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


_OBJECTIVES = {
    Constraint.MIN_COST: "cost",
    Constraint.MIN_LATENCY: "latency",
    Constraint.MIN_ENERGY: "energy",
    Constraint.MIN_POWER: "power",
    Constraint.MAX_QUALITY: "quality",
}

#: Admission priority classes a job can declare, best-first.  Priority is
#: orthogonal to the optimisation objectives above: it decides who is shed
#: first under overload (see :mod:`repro.admission`), not how an admitted
#: job is planned.
PRIORITY_CLASSES: Tuple[str, ...] = ("high", "normal", "low")

#: The priority a job gets when its spec declares none.
DEFAULT_PRIORITY = "normal"


#: Listing-2-style module-level aliases (``constraints=MIN_COST``).
MIN_COST = Constraint.MIN_COST
MIN_LATENCY = Constraint.MIN_LATENCY
MIN_ENERGY = Constraint.MIN_ENERGY
MIN_POWER = Constraint.MIN_POWER
MAX_QUALITY = Constraint.MAX_QUALITY


@dataclass(frozen=True)
class ConstraintSet:
    """A priority-ordered list of constraints plus a quality floor.

    ``priorities[0]`` is the primary objective.  ``quality_floor`` is the
    minimum per-stage quality the planner will accept ("maximize efficiency
    while meeting the target quality", §3.2).
    """

    priorities: Tuple[Constraint, ...] = (Constraint.MIN_COST,)
    quality_floor: float = 0.0

    def __post_init__(self) -> None:
        if not self.priorities:
            raise ValueError("at least one constraint is required")
        if len(set(self.priorities)) != len(self.priorities):
            raise ValueError(f"duplicate constraints in priority list: {self.priorities}")
        if not 0.0 <= self.quality_floor <= 1.0:
            raise ValueError(f"quality_floor must be in [0, 1]: {self.quality_floor}")

    @property
    def primary(self) -> Constraint:
        return self.priorities[0]

    @property
    def objective(self) -> str:
        return self.primary.objective

    def secondary_objectives(self) -> Tuple[str, ...]:
        return tuple(constraint.objective for constraint in self.priorities[1:])

    @classmethod
    def of(
        cls,
        constraints: Union["ConstraintSet", Constraint, Tuple[Constraint, ...], list, None],
        quality_floor: float = 0.0,
    ) -> "ConstraintSet":
        """Normalise the many ways a job can express its constraints."""
        if constraints is None:
            return cls(quality_floor=quality_floor)
        if isinstance(constraints, ConstraintSet):
            if quality_floor and constraints.quality_floor != quality_floor:
                return cls(priorities=constraints.priorities, quality_floor=quality_floor)
            return constraints
        if isinstance(constraints, Constraint):
            return cls(priorities=(constraints,), quality_floor=quality_floor)
        if isinstance(constraints, (tuple, list)):
            return cls(priorities=tuple(constraints), quality_floor=quality_floor)
        raise TypeError(f"cannot interpret constraints: {constraints!r}")

    def describe(self) -> str:
        names = " > ".join(constraint.name for constraint in self.priorities)
        return f"{names} (quality floor {self.quality_floor:.2f})"
