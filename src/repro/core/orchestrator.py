"""The workflow orchestrator: decompose -> map -> plan.

The orchestrator is the planning half of the Murakkab runtime: it turns a
declarative job into a task DAG (via the orchestrator LLM), maps tasks to
agents from the library, and asks the configuration planner to pick
implementations, hardware, and execution modes under the job's constraints
and the cluster manager's current resource stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.agents.base import AgentInterface
from repro.agents.library import AgentLibrary
from repro.cluster.telemetry_exchange import ResourceStatsMessage
from repro.core.dag import TaskGraph
from repro.core.decomposer import JobDecomposer
from repro.core.job import Job
from repro.core.mapper import TaskAgentMapper
from repro.core.planner import ConfigurationPlanner, ExecutionPlan, PlannerOverride
from repro.llm.orchestrator_llm import OrchestratorLLM, ReActTrace
from repro.llm.tool_calling import ToolCall
from repro.profiling.store import ProfileStore


@dataclass
class OrchestrationResult:
    """Everything the orchestrator produces before execution starts."""

    graph: TaskGraph
    plan: ExecutionPlan
    react_trace: ReActTrace
    tool_calls: Dict[str, ToolCall] = field(default_factory=dict)

    @property
    def decomposition_latency_s(self) -> float:
        return self.react_trace.latency_s


class WorkflowOrchestrator:
    """Coordinates decomposition, mapping, and configuration planning."""

    def __init__(
        self,
        library: AgentLibrary,
        profile_store: ProfileStore,
        planner: Optional[ConfigurationPlanner] = None,
        decomposer: Optional[JobDecomposer] = None,
        mapper: Optional[TaskAgentMapper] = None,
        orchestrator_model: str = "nvlm-72b",
    ) -> None:
        self.library = library
        self.profile_store = profile_store
        self.planner = planner or ConfigurationPlanner(profile_store, library)
        if decomposer is None:
            llm = OrchestratorLLM(
                model_name=orchestrator_model,
                agent_schema_lines=[schema.render() for schema in library.schemas()],
            )
            decomposer = JobDecomposer(llm)
        self.decomposer = decomposer
        self.mapper = mapper or TaskAgentMapper(library)

    def prepare(
        self,
        job: Job,
        cluster_stats: Optional[ResourceStatsMessage] = None,
        overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None,
    ) -> OrchestrationResult:
        """Decompose ``job``, plan its configuration, and emit tool calls."""
        graph, react_trace = self.decomposer.decompose(job)
        plan = self.planner.plan(
            graph,
            constraint_set=job.constraint_set(),
            cluster_stats=cluster_stats,
            overrides=overrides,
            spec_digest=getattr(job, "spec_digest", ""),
        )
        tool_calls = self.mapper.map_graph(graph, plan.chosen_agents())
        return OrchestrationResult(
            graph=graph, plan=plan, react_trace=react_trace, tool_calls=tool_calls
        )
