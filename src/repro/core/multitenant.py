"""Multi-tenant execution: independent workflows multiplexed on one cluster.

Figure 2 of the paper shows the promise of managing independent workflows
(Workflow A's tasks and Workflow B's tasks) jointly: the orchestrator and
cluster manager multiplex them over the same serving instances and idle
resources instead of giving each workflow a rigid, dedicated deployment.

:class:`MultiTenantRuntime` extends the single-job runtime with an arrival
schedule: each job is orchestrated when it arrives (seeing the then-current
cluster stats), starts executing immediately, and shares the serving-instance
pool with every other in-flight workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import calibration
from repro.agents.base import AgentInterface
from repro.cluster.hardware import get_cpu_spec
from repro.core.execution import ServerPool, WorkflowExecutor
from repro.core.job import Job, JobResult
from repro.core.planner import PlannerOverride
from repro.core.runtime import MurakkabRuntime
from repro.sim.energy import EnergyAccountant, EnergyBreakdown
from repro.sim.trace import ExecutionTrace


@dataclass
class TenantSubmission:
    """One tenant's job plus its arrival time and optional overrides."""

    arrival_time: float
    job: Job
    overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")


@dataclass
class MultiTenantReport:
    """Cluster-level metrics for a multi-tenant run."""

    job_results: Dict[str, JobResult] = field(default_factory=dict)
    merged_trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    total_energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    provisioned_gpus: int = 0
    batch_start: float = 0.0
    batch_end: float = 0.0

    @property
    def batch_makespan_s(self) -> float:
        return self.batch_end - self.batch_start

    @property
    def total_energy_wh(self) -> float:
        return self.total_energy.gpu_wh

    def mean_job_makespan_s(self) -> float:
        if not self.job_results:
            return 0.0
        return sum(result.makespan_s for result in self.job_results.values()) / len(
            self.job_results
        )


class MultiTenantRuntime(MurakkabRuntime):
    """A Murakkab runtime that multiplexes several workflows on one cluster."""

    def run_all(self, submissions: Sequence[TenantSubmission]) -> MultiTenantReport:
        """Run every submission to completion and report cluster-level metrics."""
        if not submissions:
            raise ValueError("at least one submission is required")
        pool = ServerPool(self.cluster_manager, self.library)
        merged_trace = ExecutionTrace(label="multi-tenant")
        executors: Dict[str, WorkflowExecutor] = {}
        orchestrations: Dict[str, object] = {}
        jobs: Dict[str, Job] = {}

        for submission in sorted(submissions, key=lambda s: s.arrival_time):
            self.engine.schedule_at(
                max(submission.arrival_time, self.engine.now),
                self._admit,
                submission,
                pool,
                merged_trace,
                executors,
                orchestrations,
                jobs,
            )

        self.engine.run()

        report = MultiTenantReport(provisioned_gpus=pool.total_gpus())
        finish_times: List[float] = []
        start_times: List[float] = []
        for job_id, executor in executors.items():
            job = jobs[job_id]
            orchestration = orchestrations[job_id]
            finished_at = executor.finished_at if executor.finished_at is not None else self.engine.now
            started_at = executor.trace.start_time()
            start_times.append(started_at)
            finish_times.append(finished_at)
            result = self._build_result(
                job=job,
                orchestration=orchestration,
                results=executor.results,
                trace=executor.trace,
                pool=pool,
                started_at=started_at,
                finished_at=finished_at,
            )
            report.job_results[job_id] = result
        report.batch_start = min(start_times) if start_times else 0.0
        report.batch_end = max(finish_times) if finish_times else 0.0

        for executor in executors.values():
            merged_trace.extend(executor.trace.intervals)
        report.merged_trace = merged_trace
        accountant = EnergyAccountant(
            gpu_power=self.cluster.nodes[0].gpu_spec.power,
            cpu_power_per_core_w=get_cpu_spec().active_w_per_core,
        )
        report.total_energy = accountant.account(
            merged_trace,
            provisioned_gpus=pool.total_gpus(),
            window=(report.batch_start, report.batch_end),
        )
        pool.teardown_all()
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admit(
        self,
        submission: TenantSubmission,
        pool: ServerPool,
        merged_trace: ExecutionTrace,
        executors: Dict[str, WorkflowExecutor],
        orchestrations: Dict[str, object],
        jobs: Dict[str, Job],
    ) -> None:
        job = submission.job
        stats = self.cluster_manager.stats()
        orchestration = self.orchestrator.prepare(
            job, cluster_stats=stats, overrides=submission.overrides
        )
        dag_latency = orchestration.decomposition_latency_s or calibration.DAG_CREATION_SECONDS
        trace = ExecutionTrace(label=job.job_id)
        trace.add(
            task_id=f"{job.job_id}/orchestration",
            task_name="job decomposition (orchestrator LLM)",
            category="Orchestration",
            start=self.engine.now,
            end=self.engine.now + dag_latency,
            cpu_cores=1,
            cpu_utilization=0.1,
            metadata={"workflow": job.job_id},
        )
        executor = WorkflowExecutor(
            engine=self.engine,
            cluster_manager=self.cluster_manager,
            library=self.library,
            plan=orchestration.plan,
            server_pool=pool,
            trace=trace,
            workflow_id=job.job_id,
        )
        executor.start(orchestration.graph, delay=dag_latency)
        executors[job.job_id] = executor
        orchestrations[job.job_id] = orchestration
        jobs[job.job_id] = job
