"""Multi-tenant execution: independent workflows multiplexed on one cluster.

Figure 2 of the paper shows the promise of managing independent workflows
(Workflow A's tasks and Workflow B's tasks) jointly: the orchestrator and
cluster manager multiplex them over the same serving instances and idle
resources instead of giving each workflow a rigid, dedicated deployment.

:func:`run_submissions` is the general coordinator: it admits any number of
submissions onto one runtime's shared engine and server pool in
deterministic arrival order (batch-injected into the event queue), and
either keeps full per-job results and a merged trace (the classic two-tenant
experiment) or streams per-job accounting through a callback with bounded
retained state (the trace-serving path, where N is in the thousands).
:class:`MultiTenantRuntime` remains the convenient façade over it.

With ``window=p`` the coordinator serves the schedule in windows of ``p``
submissions each and watches for a *steady window*: once two consecutive
windows are quiescent at their boundaries (every job finished, the event
queue drained) and produce identical per-position results against an
unchanged warm pool, the remaining windows are provably repeats — they are
left unsimulated and described by the returned
:attr:`MultiTenantReport.replay_plan` so the caller can account them as
batched completion deltas (the multiplex-mode fast path in
:mod:`repro.loadgen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import calibration
from repro.agents.base import AgentInterface
from repro.cluster.hardware import get_cpu_spec
from repro.core.execution import ExecutionError, ServerPool, WorkflowExecutor
from repro.core.job import Job, JobResult
from repro.core.planner import PlannerOverride, PlanningError
from repro.core.runtime import MurakkabRuntime
from repro.sim.energy import EnergyAccountant, EnergyBreakdown
from repro.sim.trace import ExecutionTrace
from repro.telemetry.metrics import round_sig


@dataclass
class WindowReplayPlan:
    """How to account the unsimulated tail of a windowed steady-state run.

    Produced by :func:`run_submissions` when ``window=p`` detects a steady
    window: the confirmed window's exact :class:`JobResult` values repeat for
    every later window, translated by the window span.  The caller replays
    position ``i`` of the remaining (arrival-sorted) submissions from
    ``pattern[i % period]``: start = that window's first arrival time plus
    the slot's offset from :attr:`base`, finish = start + the slot's
    makespan.  Replayed jobs never touch the engine, so their dynamic energy
    is *not* folded into :attr:`MultiTenantReport.total_energy` (which covers
    the simulated prefix only) — callers accounting energy per job must read
    it from the pattern results.
    """

    #: Submissions per window.
    period: int
    #: Index into the (arrival_time, index)-sorted submissions where the
    #: unsimulated tail begins (always a window boundary).
    resume_at: int
    #: Admit time of the confirmed window's first submission; pattern starts
    #: are translated relative to it.
    base: float
    #: The confirmed window's results, in window-position order.
    pattern: List[JobResult] = field(default_factory=list)


@dataclass
class TenantSubmission:
    """One tenant's job plus its arrival time and optional overrides."""

    arrival_time: float
    job: Job
    overrides: Optional[Dict[AgentInterface, PlannerOverride]] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")


@dataclass
class MultiTenantReport:
    """Cluster-level metrics for a multi-tenant run.

    In streaming mode (``collect_traces=False``) :attr:`job_results` and
    :attr:`merged_trace` stay empty — per-job detail is delivered through the
    ``on_result`` callback and summarised in :attr:`job_summaries` — while
    every aggregate remains exact.
    """

    job_results: Dict[str, JobResult] = field(default_factory=dict)
    merged_trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    total_energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    provisioned_gpus: int = 0
    batch_start: float = 0.0
    batch_end: float = 0.0
    completed_jobs: int = 0
    #: Workflows aborted as unrunnable under cluster dynamics.
    failed_jobs: int = 0
    #: ``job_id -> compact summary`` (always populated, bounded by caller).
    job_summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Set when a windowed run confirmed a steady window and returned early;
    #: the submissions from ``replay_plan.resume_at`` on were never admitted.
    replay_plan: Optional[WindowReplayPlan] = None

    @property
    def batch_makespan_s(self) -> float:
        return self.batch_end - self.batch_start

    @property
    def total_energy_wh(self) -> float:
        return self.total_energy.gpu_wh

    def mean_job_makespan_s(self) -> float:
        if self.job_summaries:
            return sum(s["makespan_s"] for s in self.job_summaries.values()) / len(
                self.job_summaries
            )
        return 0.0


def run_submissions(
    runtime: MurakkabRuntime,
    submissions: Sequence[TenantSubmission],
    pool: Optional[ServerPool] = None,
    collect_traces: bool = True,
    on_result: Optional[Callable[[JobResult], None]] = None,
    window: Optional[int] = None,
) -> MultiTenantReport:
    """Admit every submission onto ``runtime``'s shared engine and run to done.

    Admission order is deterministic: arrival time, then submission index.
    The whole schedule is batch-injected into the event queue in one pass.
    Each job is orchestrated when it arrives (seeing the then-current cluster
    stats), starts executing immediately, and shares the serving-instance
    pool with every other in-flight workflow.

    With ``collect_traces=True`` (default) the report carries full per-job
    :class:`JobResult` objects and a merged execution trace.  With
    ``collect_traces=False`` each job is accounted the moment it finishes —
    ``on_result`` receives its :class:`JobResult` (with its own trace, which
    is dropped afterwards) — and only O(jobs) compact summaries plus O(1)
    energy totals are retained, so thousand-job traces don't accumulate
    per-job executor state.  One per-job attribution difference follows from
    when results are built: streaming accounts a job's idle-energy/cost share
    against the pool *as of its finish time*, while the full mode accounts
    every job against the final pool; batch totals agree between the modes.

    ``window=p`` (streaming mode, no dynamics) serves the schedule one
    window of ``p`` submissions at a time — the next window is injected only
    once the previous boundary is reached, which is observationally
    equivalent to the one-shot injection whenever no completion coincides
    exactly with a window boundary (the windowed admission discipline is
    itself deterministic either way).  When a window is *quiescent* at its
    boundary (all ``p`` jobs finished, no events pending) its per-position
    results are digested at 12 significant digits together with the pool
    signature; two consecutive identical window digests prove every later
    window repeats, so the run stops there and describes the unsimulated
    tail in :attr:`MultiTenantReport.replay_plan`.  Traces shorter than
    ``2 * window + 1`` submissions cannot confirm a repeat and are served
    exactly as ``window=None``.
    """
    if not submissions:
        raise ValueError("at least one submission is required")
    if window is not None:
        if window < 1:
            raise ValueError("window must be a positive number of submissions")
        if collect_traces:
            raise ValueError(
                "windowed steady-state detection requires collect_traces=False"
            )
        if runtime.dynamics is not None:
            raise ValueError(
                "windowed steady-state detection requires a dynamics-free run"
            )
        if len(submissions) < 2 * window + 1:
            window = None
    engine = runtime.engine
    own_pool = pool is None
    if pool is None:
        pool = ServerPool(runtime.cluster_manager, runtime.library)

    report = MultiTenantReport()
    accountant = EnergyAccountant(
        gpu_power=runtime.cluster.nodes[0].gpu_spec.power,
        cpu_power_per_core_w=get_cpu_spec().active_w_per_core,
    )
    executors: Dict[str, WorkflowExecutor] = {}
    contexts: Dict[str, tuple] = {}
    finish_times: List[float] = []
    start_times: List[float] = []
    dynamic_energy = EnergyBreakdown()
    #: Per-window result capture for the steady-window detector; cleared at
    #: every boundary so it holds O(window) state, never O(jobs).
    window_results: Optional[Dict[str, JobResult]] = (
        {} if window is not None else None
    )

    def finish_streaming(executor: WorkflowExecutor) -> None:
        job, orchestration = contexts.pop(executor.workflow_id)
        executors.pop(executor.workflow_id, None)
        if runtime.dynamics is not None:
            runtime.dynamics.job_finished(executor)
        started_at = executor.trace.start_time()
        finished_at = (
            executor.finished_at if executor.finished_at is not None else engine.now
        )
        start_times.append(started_at)
        finish_times.append(finished_at)
        result = runtime._build_result(
            job=job,
            orchestration=orchestration,
            results=executor.results,
            trace=executor.trace,
            pool=pool,
            started_at=started_at,
            finished_at=finished_at,
            transfers=executor.transfer_summary(),
        )
        # Fold the job's dynamic (busy) energy into the running total now;
        # fleet idle energy needs the final batch window and pool size, so it
        # is integrated once at the end.
        per_job_energy = accountant.account(executor.trace, provisioned_gpus=0)
        for category, wh in per_job_energy.dynamic_wh_by_category.items():
            dynamic_energy.dynamic_wh_by_category[category] = (
                dynamic_energy.dynamic_wh_by_category.get(category, 0.0) + wh
            )
        dynamic_energy.cpu_wh += per_job_energy.cpu_wh
        report.completed_jobs += 1
        report.job_summaries[result.job_id] = result.compact_summary()
        if window_results is not None:
            window_results[result.job_id] = result
        if on_result is not None:
            on_result(result)

    def admit(submission: TenantSubmission) -> None:
        job = submission.job
        stats = runtime.cluster_manager.stats()
        try:
            orchestration = runtime.orchestrator.prepare(
                job, cluster_stats=stats, overrides=submission.overrides
            )
        except PlanningError:
            # Under dynamics the cluster may have shrunk below any feasible
            # configuration for this job; count it and keep serving.
            if runtime.dynamics is None:
                raise
            runtime.dynamics.log.failed_jobs += 1
            report.failed_jobs += 1
            return
        dag_latency = (
            orchestration.decomposition_latency_s or calibration.DAG_CREATION_SECONDS
        )
        trace = ExecutionTrace(label=job.job_id)
        trace.add(
            task_id=f"{job.job_id}/orchestration",
            task_name="job decomposition (orchestrator LLM)",
            category="Orchestration",
            start=engine.now,
            end=engine.now + dag_latency,
            cpu_cores=1,
            cpu_utilization=0.1,
            metadata={"workflow": job.job_id},
        )
        executor = WorkflowExecutor(
            engine=engine,
            cluster_manager=runtime.cluster_manager,
            library=runtime.library,
            plan=orchestration.plan,
            server_pool=pool,
            trace=trace,
            workflow_id=job.job_id,
            on_finish=None if collect_traces else finish_streaming,
            replanner=(
                runtime.make_replanner(job.constraint_set(), submission.overrides)
                if runtime.dynamics is not None
                else None
            ),
            fabric=runtime.fabric,
        )
        if runtime.dynamics is not None:
            runtime.dynamics.register_executor(executor)
        executor.start(orchestration.graph, delay=dag_latency)
        executors[job.job_id] = executor
        contexts[job.job_id] = (job, orchestration)

    ordered = sorted(
        enumerate(submissions), key=lambda pair: (pair[1].arrival_time, pair[0])
    )

    def drain(until: Optional[float] = None) -> None:
        while True:
            try:
                engine.run(until=until)
                return
            except ExecutionError as error:
                # Under cluster dynamics a single tenant can become
                # unrunnable (its capacity failed away for good).  Abort just
                # that workflow — cancelling its events and releasing what it
                # holds — count it failed, and keep serving everyone else on
                # the shared engine.
                failed = getattr(error, "executor", None)
                if runtime.dynamics is None or failed is None:
                    raise
                failed.abort()
                runtime.dynamics.job_failed(failed)
                executors.pop(failed.workflow_id, None)
                contexts.pop(failed.workflow_id, None)
                report.failed_jobs += 1

    if window is None:
        engine.schedule_at_batch(
            (max(submission.arrival_time, engine.now), admit, (submission,))
            for _index, submission in ordered
        )
        drain()
    else:
        period = window
        total = len(ordered)

        def schedule_window(start: int) -> float:
            """Inject one window's admissions; returns its first admit time."""
            base = max(ordered[start][1].arrival_time, engine.now)
            engine.schedule_at_batch(
                (max(submission.arrival_time, engine.now), admit, (submission,))
                for _index, submission in ordered[start : start + period]
            )
            return base

        def window_digest(start: int, base: float) -> Optional[tuple]:
            """Per-position signature of a quiescent window, else ``None``."""
            if executors or engine.pending_events:
                return None
            signature: List[object] = [pool.signature()]
            for _index, submission in ordered[start : start + period]:
                result = window_results.get(submission.job.job_id)
                if result is None:
                    return None
                plan = result.plan
                signature.append(
                    (
                        plan.describe() if plan is not None else None,
                        round_sig(result.started_at - base),
                        round_sig(result.makespan_s),
                        round_sig(result.energy_wh),
                        round_sig(result.cost),
                        round_sig(result.quality),
                        result.provisioned_gpus,
                    )
                )
            return tuple(signature)

        previous_digest: Optional[tuple] = None
        start = 0
        base = schedule_window(0)
        while True:
            next_start = start + period
            if next_start >= total:
                drain()
                break
            drain(until=max(ordered[next_start][1].arrival_time, engine.now))
            digest = window_digest(start, base)
            if digest is not None and digest == previous_digest:
                # Two consecutive quiescent windows with identical results
                # against an unchanged pool: every later window is this one
                # translated by the window span.  Stop simulating and hand
                # the confirmed window's exact results to the caller.
                report.replay_plan = WindowReplayPlan(
                    period=period,
                    resume_at=next_start,
                    base=base,
                    pattern=[
                        window_results[submission.job.job_id]
                        for _index, submission in ordered[start:next_start]
                    ],
                )
                break
            previous_digest = digest
            window_results.clear()
            start = next_start
            base = schedule_window(start)

    if collect_traces:
        merged_trace = ExecutionTrace(label="multi-tenant")
        for job_id, executor in executors.items():
            if runtime.dynamics is not None:
                runtime.dynamics.job_finished(executor)
            job, orchestration = contexts[job_id]
            finished_at = (
                executor.finished_at if executor.finished_at is not None else engine.now
            )
            started_at = executor.trace.start_time()
            start_times.append(started_at)
            finish_times.append(finished_at)
            result = runtime._build_result(
                job=job,
                orchestration=orchestration,
                results=executor.results,
                trace=executor.trace,
                pool=pool,
                started_at=started_at,
                finished_at=finished_at,
                transfers=executor.transfer_summary(),
            )
            report.job_results[job_id] = result
            report.completed_jobs += 1
            report.job_summaries[job_id] = result.compact_summary()
            if on_result is not None:
                on_result(result)
        report.batch_start = min(start_times) if start_times else 0.0
        report.batch_end = max(finish_times) if finish_times else 0.0
        for executor in executors.values():
            merged_trace.extend(executor.trace.intervals)
        report.merged_trace = merged_trace
        report.provisioned_gpus = pool.total_gpus()
        report.total_energy = accountant.account(
            merged_trace,
            provisioned_gpus=pool.total_gpus(),
            window=(report.batch_start, report.batch_end),
        )
    else:
        report.batch_start = min(start_times) if start_times else 0.0
        report.batch_end = max(finish_times) if finish_times else 0.0
        report.provisioned_gpus = pool.total_gpus()
        idle_wh = (
            pool.total_gpus()
            * runtime.cluster.nodes[0].gpu_spec.power.idle_w
            * report.batch_makespan_s
            / 3600.0
        )
        report.total_energy = EnergyBreakdown(
            idle_wh=idle_wh,
            dynamic_wh_by_category=dict(dynamic_energy.dynamic_wh_by_category),
            cpu_wh=dynamic_energy.cpu_wh,
        )

    if own_pool:
        pool.teardown_all()
    return report


class MultiTenantRuntime(MurakkabRuntime):
    """A Murakkab runtime that multiplexes several workflows on one cluster."""

    def run_all(
        self,
        submissions: Sequence[TenantSubmission],
        collect_traces: bool = True,
        on_result: Optional[Callable[[JobResult], None]] = None,
    ) -> MultiTenantReport:
        """Run every submission to completion and report cluster-level metrics."""
        return run_submissions(
            self,
            submissions,
            collect_traces=collect_traces,
            on_result=on_result,
        )
