"""The workflow DAG intermediate representation.

"The LLM ... identifies the relationship between tasks and generates the
corresponding internal representation as a directed acyclic graph (DAG)
where the nodes represent agents, and edges represent dataflow between
them." (§3.1)  The DAG is also what the orchestrator exposes to the cluster
manager for workflow-aware scheduling (§3.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.agents.base import AgentInterface
from repro.core.task import Task, TaskState


class TaskGraph:
    """A DAG of :class:`~repro.core.task.Task` nodes with dataflow edges."""

    def __init__(self, workflow_id: str = "workflow") -> None:
        self.workflow_id = workflow_id
        self._graph = nx.DiGraph()
        self._tasks: Dict[str, Task] = {}
        # Structure-derived caches, invalidated on any topology mutation.
        # Execution recomputes the topological order on every progress
        # announcement; for a static graph that is pure waste.
        self._topo_ids: Optional[List[str]] = None
        self._stage_order: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task) -> Task:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id: {task.task_id}")
        self._tasks[task.task_id] = task
        self._graph.add_node(task.task_id)
        self._invalidate_structure_caches()
        return task

    def add_dependency(self, upstream_id: str, downstream_id: str) -> None:
        """Declare that ``downstream`` consumes ``upstream``'s output."""
        for task_id in (upstream_id, downstream_id):
            if task_id not in self._tasks:
                raise KeyError(f"unknown task: {task_id}")
        if upstream_id == downstream_id:
            raise ValueError(f"task {upstream_id} cannot depend on itself")
        # The new edge closes a cycle iff downstream already reaches
        # upstream.  A targeted reachability walk is far cheaper than the
        # full-graph acyclicity check per edge, and edges are typically
        # added in topological order, so the walk usually stops immediately.
        if self._reaches(downstream_id, upstream_id):
            raise ValueError(
                f"adding edge {upstream_id} -> {downstream_id} would create a cycle"
            )
        self._graph.add_edge(upstream_id, downstream_id)
        self._invalidate_structure_caches()

    def _reaches(self, source_id: str, target_id: str) -> bool:
        """Whether ``target_id`` is reachable from ``source_id``."""
        adjacency = self._graph.succ
        stack = [source_id]
        visited = set()
        while stack:
            node = stack.pop()
            if node == target_id:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(adjacency[node])
        return False

    def _invalidate_structure_caches(self) -> None:
        self._topo_ids = None
        self._stage_order = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self):
        return iter(self._tasks.values())

    @property
    def tasks(self) -> Dict[str, Task]:
        return dict(self._tasks)

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(f"unknown task: {task_id!r}") from None

    def predecessors(self, task_id: str) -> List[Task]:
        return [self._tasks[t] for t in self._graph.predecessors(task_id)]

    def successors(self, task_id: str) -> List[Task]:
        return [self._tasks[t] for t in self._graph.successors(task_id)]

    def edges(self) -> List[Tuple[str, str]]:
        return list(self._graph.edges())

    def roots(self) -> List[Task]:
        return [self._tasks[t] for t in self._graph.nodes if self._graph.in_degree(t) == 0]

    def leaves(self) -> List[Task]:
        return [self._tasks[t] for t in self._graph.nodes if self._graph.out_degree(t) == 0]

    def validate(self) -> None:
        """Raise if the graph is empty or not a DAG."""
        if not self._tasks:
            raise ValueError("task graph is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("task graph contains a cycle")

    def topological_order(self) -> List[Task]:
        """Tasks in a deterministic topological order (ties by task id)."""
        if self._topo_ids is None:
            self._topo_ids = list(nx.lexicographical_topological_sort(self._graph))
        return [self._tasks[task_id] for task_id in self._topo_ids]

    def ready_tasks(self) -> List[Task]:
        """PENDING tasks whose predecessors are all COMPLETED."""
        ready = []
        for task in self._tasks.values():
            if task.state is not TaskState.PENDING:
                continue
            if all(p.state is TaskState.COMPLETED for p in self.predecessors(task.task_id)):
                ready.append(task)
        return sorted(ready, key=lambda t: t.task_id)

    def completed(self) -> List[Task]:
        return [t for t in self._tasks.values() if t.state is TaskState.COMPLETED]

    def is_complete(self) -> bool:
        return all(t.state is TaskState.COMPLETED for t in self._tasks.values())

    def tasks_by_interface(self, interface: AgentInterface) -> List[Task]:
        return [t for t in self._tasks.values() if t.interface is interface]

    def interfaces(self) -> List[AgentInterface]:
        """Distinct interfaces present, in first-appearance (stage) order."""
        seen: List[AgentInterface] = []
        for task in self._tasks.values():
            if task.interface not in seen:
                seen.append(task.interface)
        return seen

    def counts_by_interface(self) -> Dict[AgentInterface, int]:
        counts: Dict[AgentInterface, int] = {}
        for task in self._tasks.values():
            counts[task.interface] = counts.get(task.interface, 0) + 1
        return counts

    def pending_counts_by_interface(self) -> Dict[AgentInterface, int]:
        """Remaining (non-completed) tasks per interface — the demand signal
        the orchestrator announces to the cluster manager."""
        counts: Dict[AgentInterface, int] = {}
        for task in self._tasks.values():
            if task.state is not TaskState.COMPLETED:
                counts[task.interface] = counts.get(task.interface, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def critical_path(
        self, duration_fn: Callable[[Task], float]
    ) -> Tuple[float, List[Task]]:
        """Longest path through the DAG under ``duration_fn`` (per-task cost)."""
        self.validate()
        longest: Dict[str, float] = {}
        parent: Dict[str, Optional[str]] = {}
        for task in self.topological_order():
            duration = duration_fn(task)
            if duration < 0:
                raise ValueError(f"negative duration for task {task.task_id}")
            predecessors = list(self._graph.predecessors(task.task_id))
            if predecessors:
                best = max(predecessors, key=lambda p: longest[p])
                longest[task.task_id] = longest[best] + duration
                parent[task.task_id] = best
            else:
                longest[task.task_id] = duration
                parent[task.task_id] = None
        end = max(longest, key=lambda t: longest[t])
        path: List[Task] = []
        cursor: Optional[str] = end
        while cursor is not None:
            path.append(self._tasks[cursor])
            cursor = parent[cursor]
        path.reverse()
        return longest[end], path

    def stage_order(self) -> List[str]:
        """Distinct stage names in topological order of first appearance."""
        if self._stage_order is None:
            seen: List[str] = []
            for task in self.topological_order():
                if task.stage not in seen:
                    seen.append(task.stage)
            self._stage_order = seen
        return list(self._stage_order)

    def describe(self) -> str:
        """A compact, human-readable rendering of the DAG."""
        lines = [f"TaskGraph {self.workflow_id!r}: {len(self)} tasks"]
        for stage in self.stage_order():
            stage_tasks = [t for t in self._tasks.values() if t.stage == stage]
            lines.append(f"  stage {stage}: {len(stage_tasks)} task(s)")
        return "\n".join(lines)
