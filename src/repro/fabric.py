"""Network fabric model: racks, switches, links, and transfer phases.

Placement historically treated the cluster as a flat bag of nodes —
inter-stage tensors, frames, and documents moved for free.  This module
models the interconnect so the runtime can charge data movement between
dependent stages (ROADMAP open item 2):

* :class:`FabricTopology` — a deterministic, JSON-round-tripping,
  sha256-fingerprinted description of racks (each with an uplink to the
  fabric), intermediate switches, and the links between them.
* Inverse-bandwidth shortest-path routing (the MintEDGE ``DAGTopology``
  shape): the cost of an edge is ``1 / bandwidth``, so routes prefer fat
  links; rack-pair routes are memoized, which is what keeps fabric-enabled
  trace serving within a few percent of the fabric-disabled path.
* :meth:`FabricTopology.transfer_time` — the seconds one payload takes
  between two nodes: zero on the same node, through the rack uplink within
  a rack, and uplink + routed path + downlink across racks, at the
  bottleneck bandwidth along the way.

The ``uniform`` profile (one rack, unlimited bandwidth, zero latency) is
the neutral element: every transfer takes zero seconds, no transfer is
accounted anywhere, and the whole pipeline is byte-identical to a run with
no fabric attached — the differential guarantee every subsystem here ships
with.  Costs only ever attach to *costed edges* (``transfer_time > 0``), so
that guarantee is structural, not numerical.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Sentinel bandwidth for an uncontended link (serialized as JSON ``null``).
UNLIMITED = float("inf")

_BITS_PER_BYTE = 8.0
#: Bits per second in one Gbps.
_GBPS = 1e9
#: Bytes in the gigabyte that prices ``energy_per_gb_wh``.
_BYTES_PER_GB = 1e9


class FabricError(ValueError):
    """A malformed or unroutable fabric description."""


class UnknownFabricError(KeyError):
    """An unregistered fabric profile name (mirrors ``UnknownWorkloadError``)."""

    def __init__(self, fabric: str, registered: List[str]) -> None:
        super().__init__(fabric)
        self.fabric = fabric
        self.registered = list(registered)

    def __str__(self) -> str:
        known = ", ".join(self.registered) or "(none)"
        return f"unknown fabric profile {self.fabric!r}; known profiles: {known}"


def _bandwidth_to_json(value: float) -> Optional[float]:
    return None if value == UNLIMITED else value


def _bandwidth_from_json(value: Optional[float]) -> float:
    return UNLIMITED if value is None else float(value)


@dataclass(frozen=True)
class Rack:
    """One rack: a set of nodes behind a shared uplink to the fabric."""

    rack_id: str
    #: Uplink (and intra-rack) bandwidth; :data:`UNLIMITED` = uncontended.
    uplink_gbps: float = UNLIMITED
    #: One-way latency through the rack's top-of-rack switch.
    uplink_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.rack_id:
            raise FabricError("rack_id must be non-empty")
        if self.uplink_gbps <= 0:
            raise FabricError(f"rack {self.rack_id!r}: uplink_gbps must be positive")
        if self.uplink_latency_s < 0:
            raise FabricError(
                f"rack {self.rack_id!r}: uplink_latency_s must be non-negative"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rack_id": self.rack_id,
            "uplink_gbps": _bandwidth_to_json(self.uplink_gbps),
            "uplink_latency_s": self.uplink_latency_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Rack":
        return cls(
            rack_id=str(payload["rack_id"]),
            uplink_gbps=_bandwidth_from_json(payload.get("uplink_gbps")),
            uplink_latency_s=float(payload.get("uplink_latency_s", 0.0)),
        )


@dataclass(frozen=True)
class FabricLink:
    """One bidirectional link between two fabric endpoints (racks/switches)."""

    src: str
    dst: str
    bandwidth_gbps: float = UNLIMITED
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise FabricError("link endpoints must be non-empty")
        if self.src == self.dst:
            raise FabricError(f"link {self.src!r}->{self.dst!r} is a self-loop")
        if self.bandwidth_gbps <= 0:
            raise FabricError(
                f"link {self.src!r}->{self.dst!r}: bandwidth_gbps must be positive"
            )
        if self.latency_s < 0:
            raise FabricError(
                f"link {self.src!r}->{self.dst!r}: latency_s must be non-negative"
            )

    @property
    def inverse_bandwidth(self) -> float:
        """The routing weight of this link (0 for an uncontended link)."""
        return 0.0 if self.bandwidth_gbps == UNLIMITED else 1.0 / self.bandwidth_gbps

    def to_dict(self) -> Dict[str, object]:
        return {
            "src": self.src,
            "dst": self.dst,
            "bandwidth_gbps": _bandwidth_to_json(self.bandwidth_gbps),
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FabricLink":
        return cls(
            src=str(payload["src"]),
            dst=str(payload["dst"]),
            bandwidth_gbps=_bandwidth_from_json(payload.get("bandwidth_gbps")),
            latency_s=float(payload.get("latency_s", 0.0)),
        )


@dataclass(frozen=True, eq=False)
class FabricTopology:
    """A deterministic model of the cluster interconnect.

    Nodes map to racks either through explicit :attr:`assignments` or, for
    unlisted nodes, by a stable sha256 hash of the node id (never Python's
    ``hash()``, which varies with ``PYTHONHASHSEED``).  Routing between
    racks runs inverse-bandwidth Dijkstra over the rack/switch graph with
    lexicographic tie-breaks, memoized per rack pair.
    """

    name: str
    racks: Tuple[Rack, ...]
    links: Tuple[FabricLink, ...] = ()
    switches: Tuple[str, ...] = ()
    #: Explicit ``node_id -> rack_id`` pins; unlisted nodes hash to a rack.
    assignments: Mapping[str, str] = field(default_factory=dict)
    #: Wh charged per gigabyte moved over a costed edge (NICs + switches).
    energy_per_gb_wh: float = 0.0
    #: Optional hint: the testbed size this profile was drawn for (used by
    #: the CLI to provision enough nodes to exercise every rack).
    testbed_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FabricError("fabric name must be non-empty")
        if not self.racks:
            raise FabricError(f"fabric {self.name!r} needs at least one rack")
        if self.energy_per_gb_wh < 0:
            raise FabricError(f"fabric {self.name!r}: energy_per_gb_wh must be >= 0")
        if self.testbed_nodes is not None and self.testbed_nodes < 1:
            raise FabricError(f"fabric {self.name!r}: testbed_nodes must be >= 1")
        rack_ids = [rack.rack_id for rack in self.racks]
        if len(set(rack_ids)) != len(rack_ids):
            raise FabricError(f"fabric {self.name!r} has duplicate rack ids")
        endpoints = set(rack_ids) | set(self.switches)
        if len(endpoints) != len(rack_ids) + len(self.switches):
            raise FabricError(f"fabric {self.name!r}: switch ids collide with racks")
        for link in self.links:
            for endpoint in (link.src, link.dst):
                if endpoint not in endpoints:
                    raise FabricError(
                        f"fabric {self.name!r}: link endpoint {endpoint!r} is "
                        "neither a rack nor a switch"
                    )
        for node_id, rack_id in self.assignments.items():
            if rack_id not in set(rack_ids):
                raise FabricError(
                    f"fabric {self.name!r}: node {node_id!r} assigned to "
                    f"unknown rack {rack_id!r}"
                )
        object.__setattr__(self, "_racks_by_id", {r.rack_id: r for r in self.racks})
        adjacency: Dict[str, List[Tuple[str, FabricLink]]] = {}
        for link in self.links:
            adjacency.setdefault(link.src, []).append((link.dst, link))
            adjacency.setdefault(link.dst, []).append((link.src, link))
        for neighbours in adjacency.values():
            neighbours.sort(key=lambda pair: pair[0])
        object.__setattr__(self, "_adjacency", adjacency)
        object.__setattr__(self, "_route_cache", {})
        object.__setattr__(self, "_rack_of_cache", {})
        object.__setattr__(self, "_fingerprint", None)
        # Every rack pair must route: catch a disconnected profile at
        # construction, not in the middle of a trace.
        for src in rack_ids:
            for dst in rack_ids:
                if src < dst:
                    self.route(src, dst)

    # -------------------------------------------------------------- #
    # Node -> rack mapping
    # -------------------------------------------------------------- #
    def rack_of(self, node_id: str) -> str:
        """The rack hosting ``node_id`` (explicit pin or stable hash)."""
        cached = self._rack_of_cache.get(node_id)
        if cached is not None:
            return cached
        rack_id = self.assignments.get(node_id)
        if rack_id is None:
            digest = hashlib.sha256(node_id.encode("utf-8")).digest()
            index = int.from_bytes(digest[:8], "big") % len(self.racks)
            rack_id = self.racks[index].rack_id
        self._rack_of_cache[node_id] = rack_id
        return rack_id

    def rack(self, rack_id: str) -> Rack:
        try:
            return self._racks_by_id[rack_id]
        except KeyError:
            raise FabricError(f"fabric {self.name!r} has no rack {rack_id!r}") from None

    def is_cross_rack(self, src_node: str, dst_node: str) -> bool:
        return self.rack_of(src_node) != self.rack_of(dst_node)

    # -------------------------------------------------------------- #
    # Routing (inverse-bandwidth Dijkstra, memoized per rack pair)
    # -------------------------------------------------------------- #
    def route(self, src_rack: str, dst_rack: str) -> Tuple[float, float]:
        """``(path_latency_s, bottleneck_gbps)`` of the cheapest route.

        Edge cost is the link's inverse bandwidth (0 for uncontended
        links), so routes prefer fat pipes; equal-cost frontiers settle in
        lexicographic endpoint order, making the route — and therefore
        every downstream transfer time — independent of dict iteration
        order and ``PYTHONHASHSEED``.
        """
        if src_rack == dst_rack:
            return (0.0, UNLIMITED)
        key = (src_rack, dst_rack) if src_rack < dst_rack else (dst_rack, src_rack)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        start, goal = key
        best: Dict[str, float] = {start: 0.0}
        settled: Dict[str, Tuple[float, float]] = {}
        # Heap entries are (cost, vertex, path_latency, bottleneck_gbps);
        # the vertex string is the deterministic tie-break.
        frontier: List[Tuple[float, str, float, float]] = [(0.0, start, 0.0, UNLIMITED)]
        while frontier:
            cost, vertex, latency, bottleneck = heapq.heappop(frontier)
            if vertex in settled:
                continue
            settled[vertex] = (latency, bottleneck)
            if vertex == goal:
                break
            for neighbour, link in self._adjacency.get(vertex, ()):
                if neighbour in settled:
                    continue
                next_cost = cost + link.inverse_bandwidth
                known = best.get(neighbour)
                if known is None or next_cost < known:
                    best[neighbour] = next_cost
                    heapq.heappush(
                        frontier,
                        (
                            next_cost,
                            neighbour,
                            latency + link.latency_s,
                            min(bottleneck, link.bandwidth_gbps),
                        ),
                    )
        if goal not in settled:
            raise FabricError(
                f"fabric {self.name!r}: no route between racks "
                f"{src_rack!r} and {dst_rack!r}"
            )
        result = settled[goal]
        self._route_cache[key] = result
        return result

    def path_cost(self, src_rack: str, dst_rack: str) -> float:
        """Unitless congestion score of the route (latency + inverse bw)."""
        if src_rack == dst_rack:
            return 0.0
        latency, bottleneck = self.route(src_rack, dst_rack)
        inverse = 0.0 if bottleneck == UNLIMITED else 1.0 / bottleneck
        return latency + inverse

    def hop_cost(self, src_node: str, dst_node: str) -> float:
        """Locality score between two nodes: 0 on the same node, small
        within a rack, large across the fabric (used by the
        ``locality_aware`` placement policy to rank candidates)."""
        if src_node == dst_node:
            return 0.0
        src = self.rack(self.rack_of(src_node))
        dst = self.rack(self.rack_of(dst_node))
        cost = src.uplink_latency_s + dst.uplink_latency_s
        for rack in (src, dst):
            if rack.uplink_gbps != UNLIMITED:
                cost += 1.0 / rack.uplink_gbps
        if src.rack_id != dst.rack_id:
            cost += self.path_cost(src.rack_id, dst.rack_id)
        return cost

    # -------------------------------------------------------------- #
    # Transfer model
    # -------------------------------------------------------------- #
    def transfer_time(self, src_node: str, dst_node: str, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes`` from ``src_node`` to ``dst_node``.

        Same node: 0 (the data never leaves the host).  Same rack: twice
        the uplink latency plus serialization through the rack uplink.
        Cross rack: both uplinks plus the routed path's latency, at the
        bottleneck bandwidth of the whole route.
        """
        if payload_bytes <= 0 or src_node == dst_node:
            return 0.0
        src = self.rack(self.rack_of(src_node))
        dst = self.rack(self.rack_of(dst_node))
        if src.rack_id == dst.rack_id:
            latency = 2.0 * src.uplink_latency_s
            bandwidth = src.uplink_gbps
        else:
            path_latency, path_bw = self.route(src.rack_id, dst.rack_id)
            latency = src.uplink_latency_s + path_latency + dst.uplink_latency_s
            bandwidth = min(src.uplink_gbps, path_bw, dst.uplink_gbps)
        seconds = latency
        if bandwidth != UNLIMITED:
            seconds += payload_bytes * _BITS_PER_BYTE / (bandwidth * _GBPS)
        return seconds

    def transfer_energy_wh(self, payload_bytes: int) -> float:
        """Wh charged for moving ``payload_bytes`` over a costed edge."""
        if payload_bytes <= 0:
            return 0.0
        return payload_bytes / _BYTES_PER_GB * self.energy_per_gb_wh

    def is_zero_cost(self) -> bool:
        """True when every possible transfer takes exactly zero seconds —
        the neutral fabric, byte-identical to running with none attached."""
        for rack in self.racks:
            if rack.uplink_gbps != UNLIMITED or rack.uplink_latency_s != 0.0:
                return False
        for link in self.links:
            if link.bandwidth_gbps != UNLIMITED or link.latency_s != 0.0:
                return False
        return True

    # -------------------------------------------------------------- #
    # Serialization and identity
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "racks": [rack.to_dict() for rack in self.racks],
            "links": [link.to_dict() for link in self.links],
            "switches": list(self.switches),
            "assignments": {
                node: self.assignments[node] for node in sorted(self.assignments)
            },
            "energy_per_gb_wh": self.energy_per_gb_wh,
            "testbed_nodes": self.testbed_nodes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FabricTopology":
        return cls(
            name=str(payload["name"]),
            racks=tuple(Rack.from_dict(rack) for rack in payload.get("racks", ())),
            links=tuple(
                FabricLink.from_dict(link) for link in payload.get("links", ())
            ),
            switches=tuple(str(s) for s in payload.get("switches", ())),
            assignments=dict(payload.get("assignments") or {}),
            energy_per_gb_wh=float(payload.get("energy_per_gb_wh", 0.0)),
            testbed_nodes=payload.get("testbed_nodes"),
        )

    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form (the ``WorkflowSpec.digest``
        idiom), stable across processes and ``PYTHONHASHSEED``."""
        cached = self._fingerprint
        if cached is None:
            canonical = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.racks)} rack(s), {len(self.links)} link(s), "
            f"{len(self.switches)} switch(es)"
        )


# ------------------------------------------------------------------ #
# Named profiles
# ------------------------------------------------------------------ #

_PROFILES: Dict[str, Callable[[], FabricTopology]] = {}


def register_fabric(
    name: str, factory: Callable[[], FabricTopology], overwrite: bool = False
) -> None:
    """Register a fabric profile factory under ``name``."""
    if not name:
        raise ValueError("fabric profile name must be non-empty")
    if name in _PROFILES and not overwrite:
        raise ValueError(f"fabric profile {name!r} is already registered")
    _PROFILES[name] = factory


def available_fabrics() -> List[str]:
    """Registered fabric profile names, sorted."""
    return sorted(_PROFILES)


def get_fabric(name: str) -> FabricTopology:
    """Construct a fresh instance of the named profile."""
    try:
        factory = _PROFILES[name]
    except KeyError:
        raise UnknownFabricError(name, available_fabrics()) from None
    return factory()


def fabric_of(fabric) -> Optional[FabricTopology]:
    """Normalise the ways an entry point can name a fabric.

    ``None`` passes through (no fabric); a string is looked up in the
    profile registry; a dict is deserialized; a :class:`FabricTopology`
    passes through unchanged.
    """
    if fabric is None or isinstance(fabric, FabricTopology):
        return fabric
    if isinstance(fabric, str):
        return get_fabric(fabric)
    if isinstance(fabric, Mapping):
        return FabricTopology.from_dict(fabric)
    raise TypeError(f"cannot interpret fabric: {fabric!r}")


def uniform_fabric() -> FabricTopology:
    """One rack, uncontended, zero latency: the neutral (no-op) fabric."""
    return FabricTopology(name="uniform", racks=(Rack("rack0"),))


def datacenter_3tier_fabric() -> FabricTopology:
    """Four racks behind two aggregation switches and one core switch."""
    return FabricTopology(
        name="datacenter-3tier",
        racks=(
            Rack("rack0", uplink_gbps=100.0, uplink_latency_s=2e-6),
            Rack("rack1", uplink_gbps=100.0, uplink_latency_s=2e-6),
            Rack("rack2", uplink_gbps=100.0, uplink_latency_s=2e-6),
            Rack("rack3", uplink_gbps=100.0, uplink_latency_s=2e-6),
        ),
        switches=("agg0", "agg1", "core0"),
        links=(
            FabricLink("rack0", "agg0", bandwidth_gbps=40.0, latency_s=2e-6),
            FabricLink("rack1", "agg0", bandwidth_gbps=40.0, latency_s=2e-6),
            FabricLink("rack2", "agg1", bandwidth_gbps=40.0, latency_s=2e-6),
            FabricLink("rack3", "agg1", bandwidth_gbps=40.0, latency_s=2e-6),
            FabricLink("agg0", "core0", bandwidth_gbps=100.0, latency_s=3e-6),
            FabricLink("agg1", "core0", bandwidth_gbps=100.0, latency_s=3e-6),
        ),
        energy_per_gb_wh=0.05,
    )


def edge_wan_fabric() -> FabricTopology:
    """A cloud rack and an edge rack joined by a thin, slow WAN link."""
    return FabricTopology(
        name="edge-wan",
        racks=(
            Rack("cloud", uplink_gbps=100.0, uplink_latency_s=2e-6),
            Rack("edge", uplink_gbps=1.0, uplink_latency_s=5e-3),
        ),
        links=(FabricLink("cloud", "edge", bandwidth_gbps=0.2, latency_s=0.05),),
        assignments={"node0": "cloud", "node1": "edge"},
        energy_per_gb_wh=0.15,
        testbed_nodes=2,
    )


def congested_fabric() -> FabricTopology:
    """Two racks with modest uplinks joined by a badly oversubscribed link.

    Node assignments interleave the default testbed across the racks
    (``node0``/``node2`` on rack0, ``node1``/``node3`` on rack1), so a
    placement policy that ignores locality routinely pays the thin
    inter-rack link for chatty stage pairs while a locality-aware one can
    stay inside a rack.
    """
    return FabricTopology(
        name="congested",
        racks=(
            Rack("rack0", uplink_gbps=25.0, uplink_latency_s=5e-4),
            Rack("rack1", uplink_gbps=25.0, uplink_latency_s=5e-4),
        ),
        links=(FabricLink("rack0", "rack1", bandwidth_gbps=1.0, latency_s=5e-3),),
        assignments={
            "node0": "rack0",
            "node1": "rack1",
            "node2": "rack0",
            "node3": "rack1",
        },
        energy_per_gb_wh=0.08,
        testbed_nodes=4,
    )


register_fabric("uniform", uniform_fabric)
register_fabric("datacenter-3tier", datacenter_3tier_fabric)
register_fabric("edge-wan", edge_wan_fabric)
register_fabric("congested", congested_fabric)


def validate_profiles(golden_dir: Optional[str] = None) -> None:
    """Instantiate every registered profile and check the registry
    invariants (used by ``make lint``): names match registrations,
    serialization round-trips fingerprint-exactly, fingerprints are
    unique, ``uniform`` is provably zero-cost, and — when ``golden_dir``
    exists — each profile matches its golden JSON byte surface under
    ``tests/data/fabrics/``."""
    import os

    fingerprints: Dict[str, str] = {}
    for name in available_fabrics():
        fabric = get_fabric(name)
        if fabric.name != name:
            raise AssertionError(
                f"fabric registered as {name!r} reports name {fabric.name!r}"
            )
        payload = json.loads(json.dumps(fabric.to_dict()))
        round_tripped = FabricTopology.from_dict(payload)
        if round_tripped.fingerprint() != fabric.fingerprint():
            raise AssertionError(f"fabric {name!r} does not round-trip through JSON")
        fingerprint = fabric.fingerprint()
        if fingerprint in fingerprints:
            raise AssertionError(
                f"fabrics {fingerprints[fingerprint]!r} and {name!r} share "
                f"fingerprint {fingerprint!r}"
            )
        fingerprints[fingerprint] = name
    if not get_fabric("uniform").is_zero_cost():
        raise AssertionError("the 'uniform' fabric profile must be zero-cost")
    if golden_dir is not None and os.path.isdir(golden_dir):
        for name in available_fabrics():
            path = os.path.join(golden_dir, f"{name}.json")
            if not os.path.exists(path):
                raise AssertionError(f"missing fabric golden profile: {path}")
            with open(path, "r", encoding="utf-8") as handle:
                golden = json.load(handle)
            if golden != get_fabric(name).to_dict():
                raise AssertionError(
                    f"fabric golden profile {path} does not match the "
                    f"registered {name!r} profile; regenerate it with "
                    "scripts/update_fabric_goldens.py"
                )
