"""The profiler: cost-model sweeps over configurations and modes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.agents.base import (
    AgentImplementation,
    AgentInterface,
    ExecutionMode,
    HardwareConfig,
    WorkUnit,
)
from repro.agents.library import AgentLibrary
from repro.agents.profiles import ExecutionProfile, ProfileKey, build_profile
from repro.profiling.store import ProfileStore

#: Reference work units used to normalise profiles per interface.  One scene,
#: one video, one query, one item — matching the granularity at which the
#: runtime dispatches tasks.
REFERENCE_WORK_UNITS: Dict[AgentInterface, WorkUnit] = {
    AgentInterface.FRAME_EXTRACTION: WorkUnit(kind="video", quantity=1.0),
    AgentInterface.SPEECH_TO_TEXT: WorkUnit(kind="scene", quantity=1.0),
    AgentInterface.OBJECT_DETECTION: WorkUnit(kind="scene", quantity=1.0),
    AgentInterface.SCENE_SUMMARIZATION: WorkUnit(kind="scene", quantity=1.0),
    AgentInterface.EMBEDDING: WorkUnit(kind="scene", quantity=1.0),
    AgentInterface.VECTOR_DB: WorkUnit(kind="item", quantity=1.0),
    AgentInterface.QUESTION_ANSWERING: WorkUnit(kind="query", quantity=1.0),
    AgentInterface.SENTIMENT_ANALYSIS: WorkUnit(kind="item", quantity=1.0),
    AgentInterface.WEB_SEARCH: WorkUnit(kind="query", quantity=1.0),
    AgentInterface.CALCULATION: WorkUnit(kind="expression", quantity=1.0),
    AgentInterface.TEXT_GENERATION: WorkUnit(kind="item", quantity=1.0),
}


class Profiler:
    """Builds execution profiles for agent implementations."""

    def __init__(
        self,
        reference_work: Optional[Dict[AgentInterface, WorkUnit]] = None,
    ) -> None:
        self.reference_work = dict(REFERENCE_WORK_UNITS)
        if reference_work:
            self.reference_work.update(reference_work)

    def profile_implementation(
        self, implementation: AgentImplementation
    ) -> List[ExecutionProfile]:
        """Profile every (config, mode) pair the implementation supports."""
        work = self.reference_work.get(implementation.interface)
        if work is None:
            raise KeyError(
                f"no reference work unit for interface {implementation.interface!r}"
            )
        profiles: List[ExecutionProfile] = []
        for config in implementation.supported_configs():
            for mode in implementation.supported_modes():
                profiles.append(self.profile_one(implementation, config, mode, work))
        return profiles

    def profile_one(
        self,
        implementation: AgentImplementation,
        config: HardwareConfig,
        mode: ExecutionMode,
        work: Optional[WorkUnit] = None,
    ) -> ExecutionProfile:
        """Profile a single (implementation, config, mode) triple."""
        if work is None:
            work = self.reference_work[implementation.interface]
        estimate = implementation.estimate(work, config, mode)
        key = ProfileKey(agent_name=implementation.name, config=config, mode=mode)
        return build_profile(
            key=key,
            interface=implementation.interface,
            estimate=estimate,
            quality=implementation.effective_quality(mode),
        )

    def profile_library(self, library: AgentLibrary) -> ProfileStore:
        """Profile every implementation in ``library`` into a new store."""
        global _sweep_count
        _sweep_count += 1
        store = ProfileStore()
        for name in library.names():
            implementation = library.get(name)
            for profile in self.profile_implementation(implementation):
                store.add(profile)
        return store

    def profile_implementations(
        self, implementations: Iterable[AgentImplementation]
    ) -> ProfileStore:
        """Profile an explicit set of implementations into a new store."""
        store = ProfileStore()
        for implementation in implementations:
            for profile in self.profile_implementation(implementation):
                store.add(profile)
        return store


#: Full library profiling sweeps performed by this process — the cold-start
#: cost the persistent warm cache (``repro.warmstate``) exists to avoid.
#: Tests assert a warm-started service leaves this counter flat.
_sweep_count = 0


def profiling_sweep_count() -> int:
    """How many full library profiling sweeps this process has run."""
    return _sweep_count


#: Memoized master stores keyed by library fingerprint; the cache holds at
#: most this many distinct library shapes before evicting the oldest.
_STORE_CACHE_MAX = 32
_store_cache: "Dict[tuple, ProfileStore]" = {}


def default_profile_store(library: Optional[AgentLibrary] = None) -> ProfileStore:
    """A profile store for ``library``, reusing profiling work across calls.

    Profiling the full default library is the dominant cost of constructing a
    :class:`~repro.core.runtime.MurakkabRuntime`; the paper's §3.3 requires
    the system's own overheads to stay negligible, so repeated constructions
    over an identical library must not re-profile it.  Results are memoized
    by :meth:`AgentLibrary.fingerprint`, and every call returns an
    *independent copy* of the cached master store: mutating one runtime's
    store (e.g. via the service's profile hot-swap endpoints) never leaks
    into other runtimes sharing the same library shape.
    """
    if library is None:
        from repro.agents.library import default_library

        library = default_library()
    fingerprint = library.fingerprint()
    store = _store_cache.get(fingerprint)
    if store is None:
        store = Profiler().profile_library(library)
        if len(_store_cache) >= _STORE_CACHE_MAX:
            _store_cache.pop(next(iter(_store_cache)))
        _store_cache[fingerprint] = store
    return store.copy()


def clear_default_profile_store_cache() -> None:
    """Drop memoized stores (test isolation / forced re-profiling)."""
    _store_cache.clear()
