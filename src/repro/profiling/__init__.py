"""Profiling subsystem.

Murakkab "generates an execution profile for each model/tool and hardware
resource pair when a new one is added to the library" (§3.2).  The profiler
enumerates every (implementation, hardware configuration, execution mode)
triple an agent supports, runs its cost model against a reference work unit,
and stores the resulting :class:`~repro.agents.profiles.ExecutionProfile`
in a queryable :class:`~repro.profiling.store.ProfileStore`.

The paper notes the profiling overhead is amortised over the lifetime of all
workflows that use an agent (§3.3); here the store can be built once and
shared across runtimes.
"""

from repro.profiling.profiler import (
    Profiler,
    REFERENCE_WORK_UNITS,
    clear_default_profile_store_cache,
    default_profile_store,
)
from repro.profiling.store import ProfileStore

__all__ = [
    "Profiler",
    "ProfileStore",
    "REFERENCE_WORK_UNITS",
    "clear_default_profile_store_cache",
    "default_profile_store",
]
