"""A queryable store of execution profiles.

Selection queries are served from incrementally-maintained indexes:

* per-interface profile maps (insertion-ordered, so behaviour matches the
  original list-backed store exactly),
* lazily-built, per-``(interface, objective)`` ranked lists kept sorted on
  ``add`` via bisection,
* a cached Pareto front per interface.

Every mutation bumps :attr:`ProfileStore.version`, which planners use to
invalidate their own derived caches.
"""

from __future__ import annotations

from bisect import insort_right
from typing import Callable, Dict, List, Optional, Tuple

from repro.agents.base import AgentInterface
from repro.agents.profiles import ExecutionProfile, ProfileKey


def _objective_sort_key(objective: str) -> Callable[[ExecutionProfile], tuple]:
    def key(profile: ExecutionProfile) -> tuple:
        return (
            profile.objective_value(objective),
            -profile.quality,
            profile.latency_s,
            profile.energy_wh,
        )

    return key


class ProfileStore:
    """Holds :class:`ExecutionProfile` objects and answers selection queries."""

    def __init__(self) -> None:
        self._by_key: Dict[ProfileKey, ExecutionProfile] = {}
        self._by_interface: Dict[AgentInterface, Dict[ProfileKey, ExecutionProfile]] = {}
        self._keys_by_agent: Dict[str, Dict[ProfileKey, None]] = {}
        #: (interface, objective) -> profiles sorted best-first.  Built on
        #: first query, then maintained incrementally by ``add``.
        self._rank_index: Dict[Tuple[AgentInterface, str], List[ExecutionProfile]] = {}
        self._pareto_cache: Dict[AgentInterface, List[ExecutionProfile]] = {}
        self._version = 0

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: ProfileKey) -> bool:
        return key in self._by_key

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by ``add``/``remove_agent``).

        Consumers that cache derived results (e.g. the configuration
        planner's plan cache) compare versions to detect staleness.
        """
        return self._version

    def add(self, profile: ExecutionProfile) -> ExecutionProfile:
        """Add or replace the profile for its key."""
        existing = self._by_key.get(profile.key)
        if existing is not None:
            self._evict(existing)
        self._by_key[profile.key] = profile
        self._by_interface.setdefault(profile.interface, {})[profile.key] = profile
        self._keys_by_agent.setdefault(profile.agent_name, {})[profile.key] = None
        for (interface, objective), ranked in self._rank_index.items():
            if interface is profile.interface:
                insort_right(ranked, profile, key=_objective_sort_key(objective))
        self._pareto_cache.pop(profile.interface, None)
        self._version += 1
        return profile

    def remove_agent(self, agent_name: str) -> int:
        """Drop every profile belonging to ``agent_name`` (model retirement).

        Returns the number of profiles removed.
        """
        keys = self._keys_by_agent.pop(agent_name, None)
        if not keys:
            return 0
        for key in keys:
            profile = self._by_key.pop(key)
            self._evict(profile, drop_agent_key=False)
        self._version += 1
        return len(keys)

    def _evict(self, profile: ExecutionProfile, drop_agent_key: bool = True) -> None:
        """Remove ``profile`` from every index (not from ``_by_key``)."""
        interface = profile.interface
        by_interface = self._by_interface.get(interface)
        if by_interface is not None:
            by_interface.pop(profile.key, None)
            if not by_interface:
                del self._by_interface[interface]
        if drop_agent_key:
            agent_keys = self._keys_by_agent.get(profile.agent_name)
            if agent_keys is not None:
                agent_keys.pop(profile.key, None)
                if not agent_keys:
                    del self._keys_by_agent[profile.agent_name]
        # Removal from a sorted list is O(n); invalidate instead and let the
        # next query rebuild (adds stay incremental, which is the hot case).
        for index_key in [k for k in self._rank_index if k[0] is interface]:
            del self._rank_index[index_key]
        self._pareto_cache.pop(interface, None)

    def get(self, key: ProfileKey) -> ExecutionProfile:
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(f"no profile for {key.describe()}") from None

    def profiles_for(
        self,
        interface: AgentInterface,
        agent_name: Optional[str] = None,
    ) -> List[ExecutionProfile]:
        """All profiles for an interface, optionally restricted to one agent."""
        profiles = self._by_interface.get(interface)
        if profiles is None:
            return []
        if agent_name is not None:
            return [p for p in profiles.values() if p.agent_name == agent_name]
        return list(profiles.values())

    def interfaces(self) -> List[AgentInterface]:
        return list(self._by_interface.keys())

    def copy(self) -> "ProfileStore":
        """An independent store holding the same (immutable) profiles.

        Only the primary indexes are duplicated (profiles themselves are
        frozen and safely shared); derived indexes rebuild lazily.
        """
        duplicate = ProfileStore()
        duplicate._by_key = dict(self._by_key)
        duplicate._by_interface = {
            interface: dict(profiles) for interface, profiles in self._by_interface.items()
        }
        duplicate._keys_by_agent = {
            agent: dict(keys) for agent, keys in self._keys_by_agent.items()
        }
        return duplicate

    # ------------------------------------------------------------------ #
    # Selection queries (used by the planner)
    # ------------------------------------------------------------------ #
    def _ranked(self, interface: AgentInterface, objective: str) -> List[ExecutionProfile]:
        """The maintained best-first list for ``(interface, objective)``."""
        index_key = (interface, objective)
        ranked = self._rank_index.get(index_key)
        if ranked is None:
            ranked = sorted(
                self._by_interface.get(interface, {}).values(),
                key=_objective_sort_key(objective),
            )
            self._rank_index[index_key] = ranked
        return ranked

    def best(
        self,
        interface: AgentInterface,
        objective: str,
        quality_floor: float = 0.0,
        feasible: Optional[Callable[[ExecutionProfile], bool]] = None,
        agent_name: Optional[str] = None,
    ) -> Optional[ExecutionProfile]:
        """Best profile for ``interface`` under ``objective``.

        ``quality_floor`` excludes profiles below the target quality (the
        paper: "maximize efficiency while meeting the target quality");
        ``feasible`` lets the caller exclude profiles whose resources are not
        currently available (resource-aware orchestration).
        """
        for profile in self._ranked(interface, objective):
            if profile.quality < quality_floor:
                continue
            if agent_name is not None and profile.agent_name != agent_name:
                continue
            if feasible is not None and not feasible(profile):
                continue
            return profile
        return None

    def rank(
        self,
        interface: AgentInterface,
        objective: str,
        quality_floor: float = 0.0,
    ) -> List[ExecutionProfile]:
        """Profiles for ``interface`` ordered best-first under ``objective``."""
        return [
            p for p in self._ranked(interface, objective) if p.quality >= quality_floor
        ]

    def pareto_front(self, interface: AgentInterface) -> List[ExecutionProfile]:
        """Profiles not dominated on (cost, latency, energy, -quality)."""
        front = self._pareto_cache.get(interface)
        if front is None:
            candidates = self.profiles_for(interface)
            front = [
                p
                for p in candidates
                if not any(other.dominates(p) for other in candidates if other is not p)
            ]
            self._pareto_cache[interface] = front
        return list(front)

    def all_profiles(self) -> List[ExecutionProfile]:
        return list(self._by_key.values())
