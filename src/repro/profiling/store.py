"""A queryable store of execution profiles."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.agents.base import AgentInterface
from repro.agents.profiles import ExecutionProfile, ProfileKey


class ProfileStore:
    """Holds :class:`ExecutionProfile` objects and answers selection queries."""

    def __init__(self) -> None:
        self._by_key: Dict[ProfileKey, ExecutionProfile] = {}
        self._by_interface: Dict[AgentInterface, List[ExecutionProfile]] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: ProfileKey) -> bool:
        return key in self._by_key

    def add(self, profile: ExecutionProfile) -> ExecutionProfile:
        """Add or replace the profile for its key."""
        existing = self._by_key.get(profile.key)
        if existing is not None:
            self._by_interface[existing.interface].remove(existing)
        self._by_key[profile.key] = profile
        self._by_interface.setdefault(profile.interface, []).append(profile)
        return profile

    def remove_agent(self, agent_name: str) -> int:
        """Drop every profile belonging to ``agent_name`` (model retirement).

        Returns the number of profiles removed.
        """
        to_remove = [key for key, profile in self._by_key.items() if profile.agent_name == agent_name]
        for key in to_remove:
            profile = self._by_key.pop(key)
            self._by_interface[profile.interface].remove(profile)
            if not self._by_interface[profile.interface]:
                del self._by_interface[profile.interface]
        return len(to_remove)

    def get(self, key: ProfileKey) -> ExecutionProfile:
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(f"no profile for {key.describe()}") from None

    def profiles_for(
        self,
        interface: AgentInterface,
        agent_name: Optional[str] = None,
    ) -> List[ExecutionProfile]:
        """All profiles for an interface, optionally restricted to one agent."""
        profiles = list(self._by_interface.get(interface, []))
        if agent_name is not None:
            profiles = [p for p in profiles if p.agent_name == agent_name]
        return profiles

    def interfaces(self) -> List[AgentInterface]:
        return list(self._by_interface.keys())

    # ------------------------------------------------------------------ #
    # Selection queries (used by the planner)
    # ------------------------------------------------------------------ #
    def best(
        self,
        interface: AgentInterface,
        objective: str,
        quality_floor: float = 0.0,
        feasible: Optional[Callable[[ExecutionProfile], bool]] = None,
        agent_name: Optional[str] = None,
    ) -> Optional[ExecutionProfile]:
        """Best profile for ``interface`` under ``objective``.

        ``quality_floor`` excludes profiles below the target quality (the
        paper: "maximize efficiency while meeting the target quality");
        ``feasible`` lets the caller exclude profiles whose resources are not
        currently available (resource-aware orchestration).
        """
        candidates = self.profiles_for(interface, agent_name)
        candidates = [p for p in candidates if p.quality >= quality_floor]
        if feasible is not None:
            candidates = [p for p in candidates if feasible(p)]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda p: (p.objective_value(objective), -p.quality, p.latency_s, p.energy_wh),
        )

    def rank(
        self,
        interface: AgentInterface,
        objective: str,
        quality_floor: float = 0.0,
    ) -> List[ExecutionProfile]:
        """Profiles for ``interface`` ordered best-first under ``objective``."""
        candidates = [
            p for p in self.profiles_for(interface) if p.quality >= quality_floor
        ]
        return sorted(
            candidates,
            key=lambda p: (p.objective_value(objective), -p.quality, p.latency_s, p.energy_wh),
        )

    def pareto_front(self, interface: AgentInterface) -> List[ExecutionProfile]:
        """Profiles not dominated on (cost, latency, energy, -quality)."""
        candidates = self.profiles_for(interface)
        front = [
            p
            for p in candidates
            if not any(other.dominates(p) for other in candidates if other is not p)
        ]
        return front

    def all_profiles(self) -> List[ExecutionProfile]:
        return list(self._by_key.values())
