"""Ablation benchmark (ours): contribution of each Murakkab optimisation.

The paper's §4 attributes the gains to (a) cross-scene DAG parallelism,
(b) batched intra-scene summarisation, and (c) the profile-driven
Speech-to-Text configuration choice.  This bench enables them cumulatively.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments.ablation import render_ablation, run_ablation


def test_ablation_cumulative_levers(benchmark):
    steps = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(render_ablation(steps))
    for step in steps:
        benchmark.extra_info[step.label] = {
            "time_s": round(step.makespan_s, 1),
            "energy_wh": round(step.energy_wh, 1),
        }
    baseline, dag_only, batched, adaptive = steps
    # DAG parallelism alone already helps; batched summarisation is the
    # largest single contributor; the STT choice trades a little time for
    # lower energy (MIN_COST).
    assert dag_only.makespan_s < baseline.makespan_s
    assert batched.makespan_s < dag_only.makespan_s
    assert batched.makespan_s < baseline.makespan_s / 3.0
    assert adaptive.energy_wh <= batched.energy_wh
    assert adaptive.energy_wh < baseline.energy_wh / 2.5
