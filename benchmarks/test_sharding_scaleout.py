"""Sharded scale-out benchmarks: wall jobs/s of one logical service backed
by N parallel worker engines.

The pair of gated benchmarks serves the *same* 10k-job, 48-tenant trace
through a 1-shard and a 4-shard process-backed
:class:`~repro.sharding.ShardedService`; ``scripts/bench.py`` gates each
min-time against the previous ``BENCH_<n>.json`` and — on a machine with at
least 4 cores — additionally requires the 4-shard run to be >= 2.5x the
1-shard wall jobs/s (near-linear scaling minus the skew of consistent-hash
tenant placement and merge overhead).  Below 4 cores the scaling ratio is
recorded but not enforced: four workers time-slicing one core measure
scheduler fairness, not scale-out.

The persistent workers are built (spawn + profiling sweep) in the untimed
warmup round, so the timed rounds measure steady-state serving: partition,
parallel dispatch, shard-local steady-state memoization, and exact report
merging.
"""

from __future__ import annotations

import os

import pytest

from repro.loadgen import WorkloadRegistry
from repro.sharding import ShardedService
from repro.workflows.newsfeed import newsfeed_spec
from repro.workloads.arrival import poisson_arrivals

#: Distinct tenants in the trace.  Routing is per tenant, so the tenant
#: count bounds achievable balance; 48 tenants on a 128-replica ring spread
#: to a ~0.29 max shard fraction at 4 shards (measured, sha256-stable).
TENANTS = 48

#: Ring replicas for the benchmark services (see TENANTS).
REPLICAS = 128

ARRIVAL_RATE_PER_S = 20.0
HORIZON_S = 500.0


@pytest.fixture(scope="module")
def tenant_trace():
    """A ~10k-job Poisson trace across 48 registered tenant workloads."""
    registry = WorkloadRegistry()
    spec = newsfeed_spec()
    for tenant in range(TENANTS):
        registry.register_spec(spec, name=f"newsfeed-{tenant:02d}")
    arrivals = poisson_arrivals(
        rate_per_s=ARRIVAL_RATE_PER_S,
        horizon_s=HORIZON_S,
        workloads=tuple(registry.names()),
        seed=17,
    )
    assert len(arrivals) >= 10000
    return registry, arrivals


def _serve_rounds(benchmark, shards, registry, arrivals):
    service = ShardedService(shards=shards, backend="process", replicas=REPLICAS)
    reports = []

    def generation():
        report = service.submit_trace(arrivals, registry=registry)
        reports.append(report)
        return report

    try:
        # warmup builds the persistent workers (spawn + profiling sweep);
        # timed rounds hit warm engines with converged steady-state memos.
        report = benchmark.pedantic(generation, rounds=3, warmup_rounds=1, iterations=1)
    finally:
        service.shutdown()
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["cpu_count"] = os.cpu_count() or 1
    benchmark.extra_info["jobs_per_second"] = round(
        max(r.wall_jobs_per_second for r in reports), 1
    )
    benchmark.extra_info["max_shard_fraction"] = round(
        max(record["jobs"] for record in report.shards.values()) / report.jobs, 3
    )
    assert report.jobs == len(arrivals)
    assert sum(record["jobs"] for record in report.shards.values()) == report.jobs
    return report


@pytest.mark.bench_gated
def test_sharded_trace_1_shard_10k(benchmark, tenant_trace):
    """Baseline: the whole trace through one worker engine (all dispatch and
    merge overhead included, so the 4-shard ratio isolates parallelism)."""
    registry, arrivals = tenant_trace
    _serve_rounds(benchmark, 1, registry, arrivals)


@pytest.mark.bench_gated
def test_sharded_trace_4_shards_10k(benchmark, tenant_trace):
    """Scale-out: the same trace partitioned across 4 parallel workers."""
    registry, arrivals = tenant_trace
    report = _serve_rounds(benchmark, 4, registry, arrivals)
    assert len(report.shards) == 4  # every shard took a share of the tenants
