"""Fabric overhead benchmark: the network model must be near-free.

Two runs of the identical 1,000-job trace on the identical four-node
testbed, once with no fabric attached and once on the ``congested``
profile.  Transfer phases fold into the existing completion events (no
extra engine events), so the fabric-enabled run is gated at <= 1.25x the
fabric-disabled wall time by ``check_fabric_overhead`` in
``scripts/bench.py`` — both runs are also individually regression-gated.

The trace mixes newsfeed (no costed edges on this testbed) with
video-understanding (a chatty detector -> NVLM edge that crosses racks
under default placement), so the timed path exercises real transfer
charging, not just the zero-cost short-circuit.
"""

from __future__ import annotations

import pytest


def _serve_trace(fabric):
    from repro.cluster.cluster import paper_testbed
    from repro.core.runtime import MurakkabRuntime
    from repro.loadgen import default_registry
    from repro.service import AIWorkflowService
    from repro.workloads.arrival import poisson_arrivals

    arrivals = poisson_arrivals(
        rate_per_s=2.0,
        horizon_s=500.0,
        workloads=("newsfeed", "video-understanding"),
        seed=7,
    )
    service = AIWorkflowService(
        runtime=MurakkabRuntime(cluster=paper_testbed(4)), fabric=fabric
    )
    report = service.submit_trace(arrivals, registry=default_registry())
    service.shutdown()
    return report


@pytest.mark.bench_gated
def test_fabric_disabled_trace_1k(benchmark):
    """Baseline: the 1k-job mixed trace with no fabric attached."""
    reports = []

    def generation():
        report = _serve_trace(None)
        reports.append(report)
        return report

    report = benchmark.pedantic(generation, rounds=3, warmup_rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    assert report.jobs >= 900
    assert report.transfer_events == 0


@pytest.mark.bench_gated
def test_fabric_enabled_trace_1k(benchmark):
    """The same trace on the ``congested`` profile; transfers must be
    charged, and the wall time rides the 1.25x overhead gate."""
    reports = []

    def generation():
        report = _serve_trace("congested")
        reports.append(report)
        return report

    report = benchmark.pedantic(generation, rounds=3, warmup_rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["transfer_events"] = report.transfer_events
    benchmark.extra_info["cross_rack_bytes"] = report.cross_rack_bytes
    assert report.jobs >= 900
    assert report.transfer_events > 0
