"""Benchmark: regenerate the paper's Table 2 (energy and time per STT config).

Paper values: baseline 155 Wh / 285 s, Murakkab CPU 34 Wh / 83 s,
GPU 43 Wh / 77 s, GPU+CPU 42 Wh / 77 s.  The harness reports the simulated
values next to the paper's and asserts the shape (ordering and rough factors).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro import calibration
from repro.experiments.configs import STT_CONFIG_LABELS
from repro.experiments.table2 import run_table2


def test_table2_full_sweep(benchmark, table2_results):
    """Regenerates every Table-2 row and records paper-vs-measured values."""
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print()
    print(results.render())
    for label in STT_CONFIG_LABELS:
        paper = calibration.PAPER_TABLE2[label]
        benchmark.extra_info[f"{label}_energy_wh"] = round(results.energy_wh(label), 1)
        benchmark.extra_info[f"{label}_time_s"] = round(results.time_s(label), 1)
        benchmark.extra_info[f"{label}_paper_energy_wh"] = paper["energy_wh"]
        benchmark.extra_info[f"{label}_paper_time_s"] = paper["time_s"]
    # Shape assertions: who wins and by roughly what factor.
    assert results.time_s("baseline") == pytest.approx(285.0, rel=0.10)
    for label in STT_CONFIG_LABELS[1:]:
        assert results.time_s("baseline") / results.time_s(label) > 3.0
        assert results.energy_wh("baseline") / results.energy_wh(label) > 2.5
    assert results.energy_wh("murakkab-cpu") == min(
        results.energy_wh(label) for label in STT_CONFIG_LABELS[1:]
    )
    assert results.autonomous_choice == "murakkab-cpu"


@pytest.mark.parametrize("label", STT_CONFIG_LABELS)
def test_table2_row_values(benchmark, table2_results, label):
    """One benchmark entry per Table-2 row (values from the shared sweep)."""
    result = table2_results.results[label]
    paper = calibration.PAPER_TABLE2[label]

    def _row():
        return (result.energy_wh, result.makespan_s)

    energy_wh, time_s = benchmark(_row)
    benchmark.extra_info.update(
        {
            "config": label,
            "measured_energy_wh": round(energy_wh, 1),
            "measured_time_s": round(time_s, 1),
            "paper_energy_wh": paper["energy_wh"],
            "paper_time_s": paper["time_s"],
        }
    )
    assert time_s == pytest.approx(paper["time_s"], rel=0.12)
    assert energy_wh == pytest.approx(paper["energy_wh"], rel=0.35)
