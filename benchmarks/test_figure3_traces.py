"""Benchmark: regenerate the paper's Figure 3 (execution traces + utilisation).

Figure 3 shows (a) per-category execution traces for the baseline and the
Murakkab configurations and (b) cluster CPU/GPU utilisation over time, with
the baseline completing in ~283 s at low utilisation and Murakkab completing
in 77-83 s.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro import calibration
from repro.experiments.configs import STT_CONFIG_LABELS
from repro.experiments.figure3 import run_figure3


def test_figure3_traces_and_utilization(benchmark, table2_results):
    """Regenerates all four execution traces and their utilisation curves."""
    figure = benchmark.pedantic(run_figure3, kwargs={"table2": table2_results},
                                rounds=1, iterations=1)
    print()
    print(figure.render_traces(width=64))
    for label in STT_CONFIG_LABELS:
        benchmark.extra_info[f"{label}_makespan_s"] = round(figure.makespan_s(label), 1)
        benchmark.extra_info[f"{label}_mean_gpu_util_pct"] = round(
            figure.timelines[label].mean_gpu_percent, 1
        )

    low, high = calibration.PAPER_MURAKKAB_MAKESPAN_RANGE_S
    assert figure.makespan_s("baseline") == pytest.approx(
        calibration.PAPER_BASELINE_MAKESPAN_S, rel=0.10
    )
    for label in STT_CONFIG_LABELS[1:]:
        assert low * 0.85 <= figure.makespan_s(label) <= high * 1.10
        assert figure.speedup_over_baseline(label) > 3.0


def test_figure3_baseline_underutilizes_resources(benchmark, figure3_results):
    """The paper: the baseline 'severely underutilizes resources'."""

    def _mean_utilisation():
        return figure3_results.timelines["baseline"].mean_gpu_percent

    mean_gpu_pct = benchmark(_mean_utilisation)
    benchmark.extra_info["baseline_mean_gpu_util_pct"] = round(mean_gpu_pct, 1)
    assert mean_gpu_pct < 40.0


def test_figure3_cpu_config_shifts_load_to_cpus(benchmark, figure3_results):
    """The CPU STT configuration shows higher CPU and lower GPU utilisation."""

    def _delta():
        cpu_config = figure3_results.timelines["murakkab-cpu"]
        gpu_config = figure3_results.timelines["murakkab-gpu"]
        return cpu_config.mean_cpu_percent - gpu_config.mean_cpu_percent

    delta = benchmark(_delta)
    benchmark.extra_info["cpu_minus_gpu_config_cpu_util_pct"] = round(delta, 1)
    assert delta > 0
