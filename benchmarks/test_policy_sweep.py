"""Policy-sweep micro-benchmark (ours): one trace under every bundle.

Non-gated by design: the sweep exists so every registered policy bundle is
exercised end-to-end (plan, place, serve, memoize) on every CI run via
``make bench-smoke``, and so local ``BENCH_<n>.json``-style timing runs can
watch the relative serving cost of the bundles.  No regression gate applies
— policy choice legitimately trades wall-clock for latency/energy, so a
"slower" bundle is not a regression.
"""

from __future__ import annotations

import pytest

from repro.policies import available_bundles
from repro.service import AIWorkflowService
from repro.workloads.arrival import poisson_arrivals


@pytest.fixture(scope="module")
def sweep_arrivals():
    return poisson_arrivals(
        rate_per_s=0.5, horizon_s=60.0, workloads=("newsfeed",), seed=11
    )


@pytest.mark.parametrize("policy", available_bundles())
def test_policy_sweep(benchmark, policy, sweep_arrivals):
    def serve():
        service = AIWorkflowService(policy=policy)
        report = service.submit_trace(sweep_arrivals)
        service.shutdown()
        return report

    report = benchmark.pedantic(serve, rounds=1, iterations=1)
    assert report.jobs == len(sweep_arrivals)
    assert report.failed_jobs == 0
    benchmark.extra_info.update(
        {
            "policy": policy,
            "mean_makespan_s": round(report.makespan_s.mean, 4),
            "total_energy_wh": round(report.energy_wh.total, 4),
        }
    )
