"""Shared fixtures for the benchmark harness.

Each module regenerates one of the paper's tables/figures (or one of our own
ablations).  Expensive artefacts (the Table-2 runs, the profile store) are
session-scoped so that every benchmark in a session reuses them.
"""

from __future__ import annotations

import pytest

from repro.agents.library import default_library
from repro.experiments.figure3 import run_figure3
from repro.experiments.table2 import run_table2
from repro.profiling.profiler import Profiler


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def profile_store(library):
    return Profiler().profile_library(library)


@pytest.fixture(scope="session")
def table2_results():
    """The four Table-2 runs (baseline + three Murakkab STT configurations)."""
    return run_table2()


@pytest.fixture(scope="session")
def figure3_results(table2_results):
    return run_figure3(table2=table2_results)
