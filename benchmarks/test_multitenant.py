"""Multi-tenant benchmark (ours): multiplexing Workflow A and Workflow B.

Figure 2's premise: independent workflows managed jointly can multiplex
shared serving instances and idle capacity instead of each holding a rigid
dedicated deployment.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments.multitenant import run_multitenant


def test_multitenant_multiplexing(benchmark):
    comparison = benchmark.pedantic(run_multitenant, rounds=1, iterations=1)
    print()
    print(comparison.render())
    benchmark.extra_info.update(
        {
            "serial_total_time_s": round(comparison.serial_total_time_s, 1),
            "multiplexed_batch_time_s": round(comparison.multiplexed_batch_time_s, 1),
            "serial_energy_wh": round(comparison.serial_total_energy_wh, 1),
            "multiplexed_energy_wh": round(comparison.multiplexed_total_energy_wh, 1),
            "time_saving_fraction": round(comparison.time_saving_fraction, 3),
        }
    )
    assert comparison.multiplexed_batch_time_s <= comparison.serial_total_time_s
    assert comparison.multiplexed_mean_gpu_utilization >= (
        comparison.serial_mean_gpu_utilization * 0.9
    )
