"""Benchmark: regenerate the paper's Table 1 (optimisation levers).

Table 1 states, for each lever the runtime can turn, the qualitative impact
of a selection on monetary cost, power, latency, and result quality.  The
harness profiles a concrete configuration pair per lever and checks the
measured direction against the paper's entry.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments.table1 import render_table1, run_table1

_METRICS = ("cost", "power", "latency", "quality")


def test_table1_lever_sweep(benchmark):
    observations = benchmark(run_table1)
    print()
    print(render_table1(observations))
    assert len(observations) == 5
    for observation in observations:
        measured = observation.measured_directions
        benchmark.extra_info[observation.lever] = {
            metric: measured[metric] for metric in _METRICS
        }
        for metric in _METRICS:
            assert observation.matches_paper(metric), (
                observation.lever,
                metric,
                measured[metric],
                observation.paper_directions[metric],
            )


@pytest.mark.parametrize(
    "lever_index,lever_name",
    [
        (0, "GPU Generation"),
        (1, "CPU vs GPU"),
        (2, "Task Parallelism"),
        (3, "Execution Paths"),
        (4, "Model/Tool"),
    ],
)
def test_table1_single_lever(benchmark, lever_index, lever_name):
    """One benchmark entry per Table-1 row."""
    observations = run_table1()
    observation = observations[lever_index]
    assert observation.lever == lever_name

    measured = benchmark(lambda: observation.measured_directions)
    benchmark.extra_info.update(
        {
            "lever": observation.lever,
            "selection": observation.selection,
            **{f"measured_{metric}": measured[metric] for metric in _METRICS},
            **{f"paper_{metric}": observation.paper_directions[metric] for metric in _METRICS},
        }
    )
    for metric in _METRICS:
        assert observation.matches_paper(metric)
