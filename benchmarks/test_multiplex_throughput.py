"""Multiplex-mode serving benchmarks: the steady-window fast path.

``mode="multiplex"`` is the fidelity path — every job interleaves on the
shared engine — and was the last hot path still paying seed-era per-job
simulation cost.  The fast path compiles one Job template per admission
group and lets the steady-window detector replay repeating arrival windows
as batched completion deltas, so a long periodic trace simulates only the
two confirming windows.

``test_multiplex_throughput_1k`` (gated) serves the trace with the detector
on; ``test_multiplex_baseline_1k`` serves the identical trace with
``multiplex_window=0`` — the pre-detector per-event path — and rides along
non-gated as the reference.  ``scripts/bench.py`` asserts the >= 10x
fast-over-baseline ratio between the two.
"""

from __future__ import annotations

import pytest

from repro.loadgen import default_registry
from repro.service import AIWorkflowService
from repro.workloads.arrival import JobArrival

#: 340 windows x 3 overlapping arrivals = 1,020 jobs.  Each window's three
#: jobs interleave on the shared engine (0.3s apart against multi-second
#: makespans); the 40s window span lets a window drain before the next —
#: the quiescent boundary the steady-window detector requires.
WINDOWS = 340
WINDOW_SPAN_S = 40.0
PERIOD = 3


def _burst_arrivals():
    arrivals = []
    for window in range(WINDOWS):
        base = window * WINDOW_SPAN_S
        arrivals.append(JobArrival(base, "newsfeed"))
        arrivals.append(JobArrival(base + 0.3, "chain-of-thought"))
        arrivals.append(JobArrival(base + 0.6, "newsfeed"))
    return arrivals


def _serve_rounds(benchmark, rounds, **options):
    registry = default_registry()
    arrivals = _burst_arrivals()
    reports = []

    def serve():
        service = AIWorkflowService()
        try:
            report = service.submit_trace(
                arrivals, registry=registry, mode="multiplex", **options
            )
        finally:
            service.shutdown()
        reports.append(report)
        return report

    report = benchmark.pedantic(serve, rounds=rounds, warmup_rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["simulated"] = report.simulated_jobs
    benchmark.extra_info["replayed"] = report.replayed_jobs
    benchmark.extra_info["wall_jobs_per_second"] = round(
        report.wall_jobs_per_second, 2
    )
    assert report.jobs == WINDOWS * PERIOD
    # Every round must serve identically (the detector is deterministic).
    assert (
        len({(r.jobs, r.simulated_jobs, r.replayed_jobs) for r in reports}) == 1
    )
    return report


@pytest.mark.bench_gated
def test_multiplex_throughput_1k(benchmark):
    """1,020 interleaved jobs with the steady-window detector on."""
    report = _serve_rounds(benchmark, rounds=3)
    # Two confirming windows simulate; everything after replays batched.
    assert report.simulated_jobs == 2 * PERIOD
    assert report.replayed_jobs == (WINDOWS - 2) * PERIOD
    assert report.replay_runs >= 1


def test_multiplex_baseline_1k(benchmark):
    """The identical trace on the per-event path (detector disabled)."""
    report = _serve_rounds(benchmark, rounds=2, multiplex_window=0)
    assert report.simulated_jobs == WINDOWS * PERIOD
    assert report.replayed_jobs == 0
