"""Overload-serving benchmarks: admission-controlled shedding throughput.

The admission ladder (:mod:`repro.admission`) sits on the per-arrival hot
path of ``submit_trace``: under overload every arrival pays for two token
buckets, a deadline-feasibility check, and per-class accounting before the
steady-state memo is even consulted.  The gated benchmark serves a 3x-
capacity trace with the ladder installed, so a regression in the decision
path (or in the degraded-variant recompile memo) shows up directly in
trace wall time.

The capture benchmark rides along non-gated: it measures the incremental
cost of recording a full QoE capture (collector callback per arrival plus
canonical-JSON serialization), which should stay a small fraction of the
serving cost itself.
"""

from __future__ import annotations

import pytest

from repro.admission import AdmissionConfig
from repro.capture import capture_trace, replay_capture, replays_identically
from repro.loadgen import WorkloadRegistry
from repro.service import AIWorkflowService
from repro.workflows.newsfeed import newsfeed_spec
from repro.workloads.arrival import JobArrival

#: Per-job steady makespan of the newsfeed workload is ~3.5 simulated
#: seconds; the arrival interval offers ~3x that capacity.
ARRIVALS = 1200
INTERVAL_S = 1.1

#: Calibrated ladder: capacity-rate budget, latency-first degraded plans,
#: conservative cost priors (see scripts/overload_gauntlet.py for how these
#: are derived from a capacity probe).
ADMISSION = AdmissionConfig(
    rate_per_s=0.29,
    burst=2.0,
    max_defer_s=7.0,
    degrade=True,
    degraded_quality=0.0,
    degraded_constraint="min_latency",
    default_deadline_s=14.0,
    estimate_prior_s=3.5,
    degraded_prior_s=1.3,
)


def _overload_registry() -> WorkloadRegistry:
    base = newsfeed_spec()
    registry = WorkloadRegistry()
    registry.register_spec(base.with_overrides(priority="high"), name="feed-high")
    registry.register_spec(base, name="feed-normal")
    registry.register_spec(base.with_overrides(priority="low"), name="feed-low")
    return registry


def _overload_arrivals():
    tenants = ("feed-high", "feed-normal", "feed-low")
    return [
        JobArrival(arrival_time=index * INTERVAL_S, workload=tenants[index % 3])
        for index in range(ARRIVALS)
    ]


@pytest.mark.bench_gated
def test_overload_admission_1k(benchmark):
    """1.2k arrivals at ~3x capacity through the full admission ladder."""
    service = AIWorkflowService()
    registry = _overload_registry()
    arrivals = _overload_arrivals()
    reports = []

    def serve():
        report = service.submit_trace(
            arrivals, registry=registry, admission=ADMISSION
        )
        reports.append(report)
        return report

    try:
        report = benchmark.pedantic(serve, rounds=3, warmup_rounds=1, iterations=1)
    finally:
        service.shutdown()
    benchmark.extra_info["offered"] = len(arrivals)
    benchmark.extra_info["admitted"] = report.jobs
    benchmark.extra_info["rejected"] = report.rejected_jobs
    benchmark.extra_info["degraded"] = report.degraded_jobs
    benchmark.extra_info["slo_violations"] = report.slo_violations
    # The overload contract, asserted on every timed round's result: the
    # ladder sheds (both kinds) and never admits into a blown deadline.
    assert report.rejected_jobs > 0
    assert report.degraded_jobs > 0
    assert report.slo_violations == 0
    assert report.jobs + report.rejected_jobs == len(arrivals)
    # Decisions are deterministic: every round sheds identically.
    assert len({(r.jobs, r.rejected_jobs, r.degraded_jobs) for r in reports}) == 1


def test_overload_capture_roundtrip(benchmark):
    """Capture cost: serve + record + checksum a 300-arrival overload trace."""
    registry = _overload_registry()
    arrivals = _overload_arrivals()[:300]

    def capture_once():
        service = AIWorkflowService()
        try:
            capture, report = capture_trace(
                service, arrivals, registry=registry, admission=ADMISSION
            )
        finally:
            service.shutdown()
        return capture, report

    capture, report = benchmark.pedantic(
        capture_once, rounds=2, warmup_rounds=1, iterations=1
    )
    benchmark.extra_info["entries"] = len(capture.entries)
    benchmark.extra_info["capture_bytes"] = len(capture.to_json())
    assert len(capture.entries) == len(arrivals)
    replayed, _ = replay_capture(capture)
    assert replays_identically(capture, replayed)
