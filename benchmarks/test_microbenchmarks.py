"""Micro-benchmarks for the runtime's own overheads.

The paper's §3.3 discusses Murakkab's overheads: profiling, DAG creation, and
configuration search.  These benchmarks measure the simulator-side cost of
each step so regressions in the orchestration path itself are visible.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import ConstraintSet, MIN_COST
from repro.core.decomposer import JobDecomposer
from repro.core.planner import ConfigurationPlanner
from repro.llm.models import get_model_spec
from repro.llm.serving import LlmRequest, LlmServingSimulator
from repro.profiling.profiler import Profiler
from repro.sim.engine import SimulationEngine
from repro.workflows.video_understanding import video_understanding_job
from repro.workloads.video import paper_videos


def test_profiling_the_full_library(benchmark, library):
    """Profiling overhead (amortised over every workflow that reuses it)."""
    store = benchmark(lambda: Profiler().profile_library(library))
    benchmark.extra_info["profiles"] = len(store)
    assert len(store) > 50


def test_job_decomposition_overhead(benchmark):
    """DAG creation from the declarative job (paper: <1% of execution time)."""
    decomposer = JobDecomposer()
    job = video_understanding_job(videos=paper_videos(), job_id="bench-decompose")

    graph, trace = benchmark(lambda: decomposer.decompose(job))
    benchmark.extra_info["tasks"] = len(graph)
    benchmark.extra_info["simulated_llm_latency_s"] = round(trace.latency_s, 3)
    assert trace.latency_s < 0.01 * 283.0


@pytest.mark.bench_gated
def test_configuration_search_overhead(benchmark, library, profile_store):
    """Greedy configuration search across the Table-1 levers."""
    decomposer = JobDecomposer()
    job = video_understanding_job(videos=paper_videos(), job_id="bench-plan")
    graph, _ = decomposer.decompose(job)
    planner = ConfigurationPlanner(profile_store, library)
    constraint_set = ConstraintSet((MIN_COST,), quality_floor=0.93)

    plan = benchmark(lambda: planner.plan(graph, constraint_set))
    benchmark.extra_info["interfaces_planned"] = len(plan.assignments)
    assert plan.assignments


@pytest.mark.bench_gated
def test_discrete_event_engine_throughput(benchmark):
    """Raw event throughput of the simulation substrate."""

    def run_many_events():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 5000:
                engine.schedule(1.0, tick)

        engine.schedule(1.0, tick)
        engine.run()
        return count

    events = benchmark(run_many_events)
    assert events == 5000


def test_llm_serving_simulator_batch_latency(benchmark):
    """Analytic batched-serving latency model (used by agent cost models)."""
    simulator = LlmServingSimulator(get_model_spec("nvlm-72b"))
    requests = [LlmRequest(f"r{i}", prompt_tokens=800, output_tokens=120) for i in range(32)]

    metrics = benchmark(lambda: simulator.run_batched(requests))
    benchmark.extra_info["tokens_per_second"] = round(metrics.tokens_per_second, 1)
    assert metrics.requests == 32


def test_end_to_end_murakkab_submission(benchmark):
    """Wall-clock cost of simulating one full Murakkab workflow execution."""
    from repro.core.runtime import MurakkabRuntime

    def run_once():
        runtime = MurakkabRuntime()
        return runtime.submit(video_understanding_job(job_id="bench-e2e"))

    result = benchmark.pedantic(run_once, rounds=2, iterations=1)
    benchmark.extra_info["simulated_makespan_s"] = round(result.makespan_s, 1)
    assert result.makespan_s > 0


@pytest.mark.bench_gated
def test_repeated_murakkab_submission(benchmark):
    """Second-and-later runtime construction + submission on the same library.

    This is the multitenant steady state: the memoized default profile store
    skips re-profiling, the plan cache skips re-ranking candidates, and the
    executor dispatches incrementally.  The regression gate in
    ``scripts/bench.py`` watches this number.
    """
    from repro.core.runtime import MurakkabRuntime

    videos = paper_videos()

    def construct_and_submit():
        runtime = MurakkabRuntime()
        return runtime.submit(video_understanding_job(videos=videos, job_id="bench-repeat"))

    construct_and_submit()  # pay the one-time profiling cost outside the timer
    result = benchmark.pedantic(construct_and_submit, rounds=20, warmup_rounds=2, iterations=1)
    benchmark.extra_info["simulated_makespan_s"] = round(result.makespan_s, 1)
    assert result.makespan_s > 0


def _rolling_restart(arrivals, registry, cache_dir):
    """One warm service generation: fresh process state, restart, serve.

    ``clear_default_profile_store_cache`` wipes the in-process profiling
    memo, so every generation pays the true restart cost — only the on-disk
    warm cache can avoid the sweep and the per-group convergence probes.
    """
    from repro.profiling.profiler import clear_default_profile_store_cache
    from repro.service import AIWorkflowService

    clear_default_profile_store_cache()
    service = AIWorkflowService(warm_cache=cache_dir)
    report = service.submit_trace(arrivals, registry=registry)
    service.shutdown()
    return report


@pytest.mark.bench_gated
def test_trace_throughput_1k_jobs(benchmark, tmp_path):
    """Wall-clock serving throughput of a 1,000-job Poisson trace across
    warm rolling restarts.

    The first (untimed) generation runs cold: grouped steady-state
    convergence with vectorized accounting, persisting profiles, plans, and
    the trace recording to the warm cache.  Every timed generation is a
    restarted service replaying the recording — O(bins) accounting with zero
    profiling sweeps and zero convergence probes.  The regression gate in
    ``scripts/bench.py`` watches this number (min time to serve the trace;
    ``jobs_per_second`` is recorded alongside).
    """
    from repro.loadgen import default_registry
    from repro.workloads.arrival import poisson_arrivals

    arrivals = poisson_arrivals(
        rate_per_s=2.0, horizon_s=500.0, workloads=("newsfeed",), seed=7
    )
    registry = default_registry()
    cache_dir = tmp_path / "warm-1k"

    cold_report = _rolling_restart(arrivals, registry, cache_dir)
    reports = []

    def generation():
        report = _rolling_restart(arrivals, registry, cache_dir)
        reports.append(report)
        return report

    report = benchmark.pedantic(generation, rounds=5, warmup_rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    # Like the gated min_s statistic, record the best observed round: means
    # of sub-10ms runs swing wildly with background load.
    benchmark.extra_info["jobs_per_second"] = round(
        max(r.wall_jobs_per_second for r in reports), 1
    )
    benchmark.extra_info["cold_jobs_per_second"] = round(
        cold_report.wall_jobs_per_second, 1
    )
    benchmark.extra_info["simulated_jobs"] = report.simulated_jobs
    assert report.jobs >= 1000
    assert cold_report.simulated_jobs > 0 and not cold_report.warm_trace
    assert report.warm_trace and report.simulated_jobs == 0


@pytest.mark.bench_gated
def test_trace_throughput_10k_jobs(benchmark, tmp_path):
    """Warm-restart serving throughput at 10x the trace volume.

    Same shape as the 1k benchmark but with ~10,000 arrivals: replay cost is
    dominated by array-level accounting, so jobs/second should *rise* with
    volume (fixed restart cost amortised over more jobs), not fall.
    """
    from repro.loadgen import default_registry
    from repro.workloads.arrival import poisson_arrivals

    arrivals = poisson_arrivals(
        rate_per_s=20.0, horizon_s=500.0, workloads=("newsfeed",), seed=11
    )
    registry = default_registry()
    cache_dir = tmp_path / "warm-10k"

    _rolling_restart(arrivals, registry, cache_dir)
    reports = []

    def generation():
        report = _rolling_restart(arrivals, registry, cache_dir)
        reports.append(report)
        return report

    report = benchmark.pedantic(generation, rounds=3, warmup_rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = report.jobs
    benchmark.extra_info["jobs_per_second"] = round(
        max(r.wall_jobs_per_second for r in reports), 1
    )
    assert report.jobs >= 10000
    assert report.warm_trace and report.simulated_jobs == 0


@pytest.mark.bench_gated
def test_service_cold_vs_warm_start(benchmark, tmp_path):
    """Restart-to-first-trace latency: cold sweep + convergence vs warm replay.

    Times a full service generation (profile memo wiped, service constructed,
    a 200-job trace served).  The warm generation restores profiles and plans
    from disk and replays the recorded trace, so it skips the profiling sweep
    and every convergence probe; the cold time is recorded alongside in
    ``extra_info`` for the comparison.
    """
    import time as _time

    from repro.loadgen import default_registry
    from repro.workloads.arrival import poisson_arrivals

    arrivals = poisson_arrivals(
        rate_per_s=2.0, horizon_s=100.0, workloads=("newsfeed",), seed=13
    )
    registry = default_registry()
    cache_dir = tmp_path / "warm-restart"

    cold_start = _time.perf_counter()
    cold_report = _rolling_restart(arrivals, registry, None)
    cold_s = _time.perf_counter() - cold_start

    _rolling_restart(arrivals, registry, cache_dir)  # populate the cache
    report = benchmark.pedantic(
        lambda: _rolling_restart(arrivals, registry, cache_dir),
        rounds=10,
        warmup_rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cold_restart_s"] = round(cold_s, 4)
    benchmark.extra_info["jobs"] = report.jobs
    assert cold_report.simulated_jobs > 0 and not cold_report.warm_trace
    assert report.warm_trace and report.simulated_jobs == 0


def test_event_queue_cancellation_churn(benchmark):
    """Push/cancel churn: lazily-cancelled events must not bloat the heap."""
    from repro.sim.events import EventQueue

    def churn():
        queue = EventQueue()
        for round_index in range(50):
            events = [queue.push(float(round_index) + i * 1e-6, lambda: None) for i in range(200)]
            for event in events[:190]:
                event.cancel()
            while queue.live_count > 5:
                queue.pop()
        return len(queue)

    heap_size = benchmark(churn)
    assert heap_size <= 400  # compaction keeps dead entries bounded


def test_allocator_claim_release_churn(benchmark):
    """Allocator hot loop: per-task CPU lane claims against a busy cluster."""
    from repro.cluster.allocator import Allocator, ResourceRequest
    from repro.cluster.cluster import paper_testbed

    def churn():
        allocator = Allocator(paper_testbed())
        for i in range(300):
            allocation = allocator.allocate(ResourceRequest(owner=f"task{i}", cpu_cores=4))
            assert allocation is not None
            if i % 3 == 0:
                allocator.release(allocation)
            if i % 7 == 0:
                allocator.release_owner(f"task{i - 1}")
            if allocator.cluster.free_cpu_cores < 16:
                for owner in [f"task{j}" for j in range(max(0, i - 40), i)]:
                    allocator.release_owner(owner)
        return len(allocator.active_allocations())

    benchmark(churn)
