"""Benchmark: the paper's headline claims.

Abstract / §4: "speedups up to ~3.4x in workflow completion times while
delivering ~4.5x higher energy efficiency".
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro import calibration
from repro.experiments.headline import run_headline


def test_headline_speedup_and_energy_efficiency(benchmark, table2_results):
    claims = benchmark.pedantic(
        run_headline, kwargs={"table2": table2_results}, rounds=1, iterations=1
    )
    print()
    print(claims.render())
    benchmark.extra_info.update(
        {
            "measured_speedup": round(claims.measured_speedup, 2),
            "paper_speedup": calibration.PAPER_SPEEDUP,
            "measured_energy_gain": round(claims.measured_energy_gain, 2),
            "paper_energy_gain": calibration.PAPER_ENERGY_EFFICIENCY_GAIN,
            "murakkab_choice": claims.murakkab_choice,
        }
    )
    # The shape: several-fold speedup and several-fold energy-efficiency gain,
    # within ~25% of the paper's reported factors.
    assert claims.measured_speedup == pytest.approx(calibration.PAPER_SPEEDUP, rel=0.25)
    assert claims.measured_energy_gain == pytest.approx(
        calibration.PAPER_ENERGY_EFFICIENCY_GAIN, rel=0.25
    )
    assert claims.murakkab_choice == "murakkab-cpu"
