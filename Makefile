PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-record

test:
	$(PYTHON) -m pytest -x -q

## Run the micro-benchmarks, append BENCH_<n>.json to the perf trajectory,
## and fail if a gated hot-path metric regressed >20% vs the previous record.
bench:
	$(PYTHON) scripts/bench.py

## Record a new BENCH_<n>.json without gating (e.g. on a new machine).
bench-record:
	$(PYTHON) scripts/bench.py --no-gate
