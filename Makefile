PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-record bench-smoke examples-smoke overload-smoke lint ci

test:
	$(PYTHON) -m pytest -x -q

## Run every script in examples/ once (the public API surface in executable
## form); fails on the first example that exits non-zero.
examples-smoke:
	$(PYTHON) scripts/examples_smoke.py

## Stdlib-only lint: byte-compile every source tree with SyntaxWarning
## promoted to an error (catches invalid escapes, suspicious literals, and
## any syntax error before the test suite runs).  -f forces recompilation so
## warnings fire even when .pyc files are fresh.  The repro.policies check
## instantiates every registered control-plane bundle and asserts the
## registry invariants (well-typed policies, unique fingerprints); the
## repro.fabric check does the same for fabric profiles, including their
## golden JSON surfaces under tests/data/fabrics/ (regenerate with
## scripts/update_fabric_goldens.py after an intentional profile change).
lint:
	$(PYTHON) -W error::SyntaxWarning -m compileall -q -f src tests benchmarks scripts examples
	$(PYTHON) -c "from repro.policies import validate_registry; validate_registry()"
	$(PYTHON) -c "from repro.fabric import validate_profiles; validate_profiles('tests/data/fabrics')"

## Run the micro-benchmarks, append BENCH_<n>.json to the perf trajectory,
## and fail if a gated hot-path metric regressed >20% vs the previous record.
bench:
	$(PYTHON) scripts/bench.py

## Record a new BENCH_<n>.json without gating (e.g. on a new machine).
bench-record:
	$(PYTHON) scripts/bench.py --no-gate

## Run each micro-benchmark once, untimed: no BENCH_<n>.json, no gate.
## Proves the perf code paths execute; this is what CI runs.
bench-smoke:
	$(PYTHON) scripts/bench.py --smoke

## The overload gauntlet: 3x offered load with admission control on must
## shed (reject AND degrade) without a single deadline violation among
## admitted jobs, and the captured trace must replay byte-identically.
overload-smoke:
	$(PYTHON) scripts/overload_gauntlet.py

## The exact entrypoint .github/workflows/ci.yml calls — reproducible locally.
ci: lint test examples-smoke bench-smoke overload-smoke
