#!/usr/bin/env python
"""Overload CI gauntlet: admission control under 3x offered load.

Drives one logical service well past capacity and asserts the overload
contract end to end:

1. **Capacity probe** — measure the steady per-job makespan of the gauntlet
   workload on a throwaway service; its inverse is the serving capacity in
   jobs/s.  Every threshold below is derived from this measurement, so the
   gauntlet is calibrated to the machine it runs on, not to magic numbers.
2. **Overload run** — offer 3x capacity with the admission ladder installed
   at exactly capacity.  The run must shed: nonzero rejected AND nonzero
   degraded jobs, with high-priority tenants still being served.
3. **SLO contract** — zero deadline violations among admitted jobs: the
   deadline-feasibility check must shed load *instead of* admitting jobs it
   cannot finish in time.
4. **Replay determinism** — the run is recorded through
   :mod:`repro.capture`; two independent replays (fresh services, fresh
   engines) must reproduce the capture byte-for-byte, checksum-equal.

Exit status is nonzero on any violated assertion — this is the contract the
``overload-gauntlet`` CI job enforces on every push, on every supported
Python version.

Usage::

    python scripts/overload_gauntlet.py                      # full gauntlet
    python scripts/overload_gauntlet.py --capture-out X.json # keep the capture
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.admission import AdmissionConfig
from repro.capture import (
    TraceCapture,
    capture_trace,
    diff_captures,
    replay_capture,
    replays_identically,
)
from repro.loadgen import WorkloadRegistry
from repro.service import AIWorkflowService
from repro.workflows.newsfeed import newsfeed_spec
from repro.workloads.arrival import JobArrival

#: Offered load as a multiple of measured capacity.
OVERLOAD_FACTOR = 3.0

#: Arrivals in the overload trace (cycling the three tenants below).
TRACE_JOBS = 90

_FAILURES: List[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    marker = "ok" if ok else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"  [{marker}] {label}{suffix}")
    if not ok:
        _FAILURES.append(label)


def gauntlet_registry() -> WorkloadRegistry:
    """Three tenants of one workload family across all priority classes.

    Sharing one spec family keeps the capacity probe meaningful for every
    tenant; the priority overrides are what the admission ladder
    discriminates on.
    """
    base = newsfeed_spec()
    registry = WorkloadRegistry()
    registry.register_spec(
        base.with_overrides(priority="high"), name="newsfeed-interactive"
    )
    registry.register_spec(base, name="newsfeed-batch")
    registry.register_spec(
        base.with_overrides(priority="low"), name="newsfeed-backfill"
    )
    return registry


def measure_capacity() -> dict:
    """Calibration pass on a throwaway service (the gauntlet run itself
    starts cold): per-family full and degraded steady makespans.

    The slowest full makespan sets capacity; both maxima become the
    admission ladder's conservative cost priors, so a workload whose cost
    has not been observed *in the overload run yet* can never be admitted
    into a deadline it would then blow."""
    from repro.core.constraints import Constraint
    from repro.spec.compiler import compile_spec

    service = AIWorkflowService()
    registry = gauntlet_registry()
    name = "newsfeed-batch"
    full = service.submit_job(registry.build(name, f"probe-{name}")).makespan_s
    spec = registry.spec(name).with_overrides(
        constraints=Constraint.MIN_LATENCY, quality_target=0.0
    )
    job = compile_spec(
        spec,
        inputs=registry.materialized_inputs(name),
        job_id=f"probe-{name}-degraded",
    )
    degraded = service.submit_job(job).makespan_s
    service.shutdown()
    return {"makespan_s": full, "degraded_makespan_s": degraded}


def overload_arrivals(makespan_s: float) -> List[JobArrival]:
    interval = makespan_s / OVERLOAD_FACTOR
    tenants = (
        "newsfeed-interactive",
        "newsfeed-batch",
        "newsfeed-backfill",
    )
    return [
        JobArrival(arrival_time=index * interval, workload=tenants[index % len(tenants)])
        for index in range(TRACE_JOBS)
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--capture-out",
        default=None,
        metavar="PATH",
        help="also write the gauntlet capture file to PATH (CI uploads it "
        "as a failure artifact)",
    )
    args = parser.parse_args()

    calibration = measure_capacity()
    makespan = calibration["makespan_s"]
    capacity = 1.0 / makespan
    print(
        f"capacity probe: makespan {makespan:.2f}s/job "
        f"(degraded {calibration['degraded_makespan_s']:.2f}s) -> "
        f"{capacity:.3f} jobs/s; offering {OVERLOAD_FACTOR:.0f}x"
    )

    config = AdmissionConfig(
        rate_per_s=capacity,
        burst=2.0,
        max_defer_s=2.0 * makespan,
        degrade=True,
        degraded_quality=0.0,
        degraded_constraint="min_latency",
        default_deadline_s=4.0 * makespan,
        estimate_prior_s=makespan,
        degraded_prior_s=calibration["degraded_makespan_s"],
    )
    arrivals = overload_arrivals(makespan)

    service = AIWorkflowService()
    capture, report = capture_trace(
        service, arrivals, registry=gauntlet_registry(), admission=config
    )
    service.shutdown()
    if args.capture_out:
        capture.save(args.capture_out)
        print(f"capture written to {args.capture_out}")

    admitted = report.jobs
    print(
        f"overload run: {len(arrivals)} offered, {admitted} admitted, "
        f"{report.degraded_jobs} degraded, {report.deferred_jobs} deferred, "
        f"{report.rejected_jobs} rejected"
    )
    print("shedding contract:")
    check("overload sheds load", report.rejected_jobs > 0)
    check("quality degraded before dropping", report.degraded_jobs > 0)
    check("some jobs still admitted", admitted > 0)
    check(
        "sheds are counted distinctly",
        admitted + report.rejected_jobs == len(arrivals)
        and report.degraded_jobs + report.deferred_jobs <= admitted,
    )
    high = report.priority_classes.get("high", {})
    low = report.priority_classes.get("low", {})
    check(
        "high-priority tenant keeps being served",
        high.get("jobs", 0) > 0,
        f"high={high}",
    )
    check(
        "low class sheds at least as hard as high",
        low.get("rejected", 0) >= high.get("rejected", 0),
        f"low_rejected={low.get('rejected', 0)} high_rejected={high.get('rejected', 0)}",
    )

    print("SLO contract:")
    check(
        "zero deadline violations among admitted jobs",
        report.slo_violations == 0,
        f"slo_violations={report.slo_violations}",
    )
    missed = [
        entry.job_id
        for entry in capture.entries
        if entry.outcome not in ("reject", "failed") and entry.slo_met is False
    ]
    check("every admitted QoE entry met its deadline", not missed, f"missed={missed[:5]}")

    print("replay determinism (2 independent replays):")
    first, _ = replay_capture(capture)
    second, _ = replay_capture(capture)
    check(
        "replay #1 is byte-identical",
        replays_identically(capture, first),
        f"diff={diff_captures(capture, first)}",
    )
    check(
        "replay #2 is byte-identical",
        replays_identically(capture, second),
        f"diff={diff_captures(capture, second)}",
    )
    check(
        "replays agree with each other",
        replays_identically(first, second),
    )
    roundtrip = TraceCapture.from_json(capture.to_json())
    check(
        "capture file round-trips checksum-exact",
        replays_identically(capture, roundtrip),
    )

    if _FAILURES:
        print(f"overload gauntlet FAILED: {', '.join(_FAILURES)}")
        return 1
    print("overload gauntlet passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
