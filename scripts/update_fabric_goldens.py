#!/usr/bin/env python
"""Regenerate the fabric golden-profile JSON files under tests/data/fabrics/.

Every registered fabric profile is serialized to its canonical dict form,
one file per profile.  ``make lint`` (via ``repro.fabric.validate_profiles``)
fails when a registered profile drifts from its golden file, so an
intentional profile change must re-run this script and commit the diff —
the same contract as the policy-bundle registry check.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric import available_fabrics, get_fabric  # noqa: E402

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "data", "fabrics")


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in available_fabrics():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(get_fabric(name).to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
