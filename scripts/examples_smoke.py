"""Run every script in ``examples/`` once and fail on the first error.

The examples are the public API surface in executable form: if a refactor
breaks ``MurakkabClient``, the spec builder, or a legacy factory shim, one
of these scripts breaks with it.  ``make examples-smoke`` runs this as part
of ``make ci``, so the front door cannot silently regress.

Usage::

    python scripts/examples_smoke.py [--filter SUBSTRING]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--filter", default="", help="only run examples whose filename contains this"
    )
    args = parser.parse_args()

    scripts = sorted(
        path
        for path in EXAMPLES_DIR.glob("*.py")
        if args.filter in path.name
    )
    if not scripts:
        print(f"no examples match {args.filter!r}", file=sys.stderr)
        return 2

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures = []
    for script in scripts:
        started = time.perf_counter()
        result = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - started
        status = "ok" if result.returncode == 0 else f"FAIL ({result.returncode})"
        print(f"{script.name:<28} {status:>10}  {elapsed:6.1f}s")
        if result.returncode != 0:
            failures.append(script.name)
            sys.stdout.write(result.stdout[-2000:])
            sys.stderr.write(result.stderr[-4000:])

    if failures:
        print(f"\n{len(failures)} example(s) failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {len(scripts)} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
