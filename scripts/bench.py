#!/usr/bin/env python
"""Performance regression harness.

Runs the micro-benchmark suite with ``pytest-benchmark``, records the result
as the next ``BENCH_<n>.json`` in the repository root (a trajectory future
PRs can plot), and fails when a gated hot-path metric regresses more than
the allowed ratio versus the previous ``BENCH_*.json``.

Usage::

    python scripts/bench.py             # run, record, and gate
    python scripts/bench.py --no-gate   # run and record only
    python scripts/bench.py --smoke     # run each benchmark once: no timing,
                                        # no BENCH_<n>.json, no gate (CI)
    make bench                          # same as the first form
    make bench-smoke                    # same as --smoke

Gated metrics (min seconds — the noise-robust statistic — lower is better):

* ``test_discrete_event_engine_throughput`` — simulation substrate
* ``test_configuration_search_overhead``    — planning latency
* ``test_repeated_murakkab_submission``     — warm construct+submit path
* ``test_trace_throughput_1k_jobs``         — warm-restart trace replay (1k)
* ``test_trace_throughput_10k_jobs``        — warm-restart trace replay (10k)
* ``test_service_cold_vs_warm_start``       — restart-to-first-trace latency
* ``test_sharded_trace_1_shard_10k``        — sharded serving baseline
* ``test_sharded_trace_4_shards_10k``       — 4-way parallel scale-out (plus
  the >= 2.5x speedup gate on machines with >= 4 cores)
* ``test_overload_admission_1k``            — admission-ladder shedding at
  3x offered load (rate buckets + deadline feasibility per arrival)
* ``test_multiplex_throughput_1k``          — multiplex steady-window fast
  path (plus the >= 10x speedup gate over the per-event baseline)
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Benchmark name -> allowed regression ratio versus the previous record.
GATES = {
    "test_discrete_event_engine_throughput": 1.20,
    "test_configuration_search_overhead": 1.20,
    "test_repeated_murakkab_submission": 1.20,
    "test_trace_throughput_1k_jobs": 1.20,
    "test_trace_throughput_10k_jobs": 1.20,
    "test_service_cold_vs_warm_start": 1.20,
    "test_sharded_trace_1_shard_10k": 1.20,
    "test_sharded_trace_4_shards_10k": 1.20,
    "test_overload_admission_1k": 1.20,
    "test_multiplex_throughput_1k": 1.20,
    "test_fabric_disabled_trace_1k": 1.20,
    "test_fabric_enabled_trace_1k": 1.20,
}

#: The 4-shard run must beat the 1-shard run by at least this wall-time
#: ratio on a machine with >= MIN_SCALING_CPUS cores (below that, four
#: workers time-slice one core and the ratio measures nothing).
SCALING_MIN_SPEEDUP = 2.5
MIN_SCALING_CPUS = 4

#: The multiplex steady-window fast path must beat the per-event baseline
#: on the same trace by at least this wall-time ratio (single-process, so
#: the gate is armed on every machine).
MULTIPLEX_MIN_SPEEDUP = 10.0

#: Attaching a fabric may cost at most this wall-time ratio versus the
#: identical trace with no fabric (transfer phases fold into existing
#: completion events, so the model must stay near-free).
FABRIC_MAX_OVERHEAD = 1.25


def existing_records() -> list:
    records = []
    for path in REPO_ROOT.iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match:
            records.append((int(match.group(1)), path))
    return sorted(records)


def run_benchmarks(json_path: Path) -> None:
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/test_microbenchmarks.py",
        "benchmarks/test_sharding_scaleout.py",
        "benchmarks/test_overload_admission.py",
        "benchmarks/test_multiplex_throughput.py",
        "benchmarks/test_fabric_throughput.py",
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {result.returncode}")


def summarise(raw: dict) -> dict:
    benchmarks = {}
    for entry in raw.get("benchmarks", []):
        summary = {
            "mean_s": entry["stats"]["mean"],
            "median_s": entry["stats"]["median"],
            "min_s": entry["stats"]["min"],
            "rounds": entry["stats"]["rounds"],
        }
        # Derived metrics the benchmarks attach (e.g. the trace benchmark's
        # jobs_per_second) ride along in the record.
        extra = entry.get("extra_info") or {}
        if extra:
            summary["extra_info"] = extra
        benchmarks[entry["name"]] = summary
    return benchmarks


def gate(current: dict, previous: dict, previous_name: str) -> list:
    failures = []
    for name, allowed_ratio in GATES.items():
        if name not in current or name not in previous:
            continue
        # Gate on the minimum: means of micro-benchmarks swing 20-30% with
        # background load, while the best observed round tracks the actual
        # cost of the code path.
        now = current[name]["min_s"]
        before = previous[name]["min_s"]
        if before <= 0:
            continue
        ratio = now / before
        marker = "FAIL" if ratio > allowed_ratio else "ok"
        print(
            f"  [{marker}] {name}: {before * 1e3:.3f} ms -> {now * 1e3:.3f} ms "
            f"({ratio:.2f}x vs {previous_name}, allowed {allowed_ratio:.2f}x)"
        )
        if ratio > allowed_ratio:
            failures.append(name)
    return failures


def check_scaling(benchmarks: dict) -> list:
    """The sharded scale-out gate: 4 shards must beat 1 shard by
    ``SCALING_MIN_SPEEDUP``x wall time — enforced only on machines with at
    least ``MIN_SCALING_CPUS`` cores, recorded (with the cpu count) always.
    """
    one = benchmarks.get("test_sharded_trace_1_shard_10k")
    four = benchmarks.get("test_sharded_trace_4_shards_10k")
    if not one or not four:
        return []
    cpus = int((four.get("extra_info") or {}).get("cpu_count", 0))
    speedup = one["min_s"] / four["min_s"] if four["min_s"] > 0 else 0.0
    if cpus < MIN_SCALING_CPUS:
        print(
            f"  [skip] sharded scale-out: {speedup:.2f}x on {cpus} cpu(s); "
            f"the {SCALING_MIN_SPEEDUP:.1f}x gate needs >= {MIN_SCALING_CPUS} cores"
        )
        return []
    marker = "FAIL" if speedup < SCALING_MIN_SPEEDUP else "ok"
    print(
        f"  [{marker}] sharded scale-out: 4 shards = {speedup:.2f}x 1 shard "
        f"on {cpus} cpus (required {SCALING_MIN_SPEEDUP:.1f}x)"
    )
    return [] if speedup >= SCALING_MIN_SPEEDUP else ["sharded_scaleout_speedup"]


def check_multiplex(benchmarks: dict) -> list:
    """The multiplex fast-path gate: the steady-window run must beat the
    per-event baseline on the identical trace by ``MULTIPLEX_MIN_SPEEDUP``x
    wall time.  Both runs live in one process, so unlike the sharded
    scaling gate this is armed regardless of core count."""
    fast = benchmarks.get("test_multiplex_throughput_1k")
    baseline = benchmarks.get("test_multiplex_baseline_1k")
    if not fast or not baseline:
        return []
    speedup = baseline["min_s"] / fast["min_s"] if fast["min_s"] > 0 else 0.0
    marker = "FAIL" if speedup < MULTIPLEX_MIN_SPEEDUP else "ok"
    print(
        f"  [{marker}] multiplex fast path: {speedup:.1f}x the per-event "
        f"baseline (required {MULTIPLEX_MIN_SPEEDUP:.0f}x)"
    )
    return [] if speedup >= MULTIPLEX_MIN_SPEEDUP else ["multiplex_fastpath_speedup"]


def check_fabric_overhead(benchmarks: dict) -> list:
    """The fabric overhead gate: serving the identical 1k-job trace with the
    ``congested`` fabric attached must stay within ``FABRIC_MAX_OVERHEAD``x
    of the fabric-disabled wall time.  Single-process, armed everywhere."""
    disabled = benchmarks.get("test_fabric_disabled_trace_1k")
    enabled = benchmarks.get("test_fabric_enabled_trace_1k")
    if not disabled or not enabled:
        return []
    ratio = enabled["min_s"] / disabled["min_s"] if disabled["min_s"] > 0 else 0.0
    marker = "FAIL" if ratio > FABRIC_MAX_OVERHEAD else "ok"
    print(
        f"  [{marker}] fabric overhead: congested = {ratio:.2f}x the "
        f"fabric-free trace (allowed {FABRIC_MAX_OVERHEAD:.2f}x)"
    )
    return [] if ratio <= FABRIC_MAX_OVERHEAD else ["fabric_overhead_ratio"]


#: Cold generation: serve a small trace with a warm cache attached, persist
#: profiles/plans/the trace recording, and prove the run was actually cold.
_SMOKE_COLD = """
import sys
from repro.loadgen import default_registry
from repro.service import AIWorkflowService
from repro.workloads.arrival import uniform_arrivals

service = AIWorkflowService(warm_cache=sys.argv[1])
report = service.submit_trace(
    uniform_arrivals(12, 1.0, workloads=("newsfeed",)), registry=default_registry()
)
service.shutdown()
assert not report.warm_trace and report.simulated_jobs > 0, report.summary()
assert service.warm_cache.stores >= 3, service.warm_cache.counters()
print(f"cold: {report.jobs} jobs, {report.simulated_jobs} simulated")
"""

#: Warm generation in a **separate process**: the only shared state is the
#: on-disk cache, so zero sweeps + full replay proves the restart is warm.
_SMOKE_WARM = """
import sys
from repro.loadgen import default_registry
from repro.profiling.profiler import profiling_sweep_count
from repro.service import AIWorkflowService
from repro.workloads.arrival import uniform_arrivals

service = AIWorkflowService(warm_cache=sys.argv[1])
report = service.submit_trace(
    uniform_arrivals(12, 1.0, workloads=("newsfeed",)), registry=default_registry()
)
service.shutdown()
assert profiling_sweep_count() == 0, "warm restart ran a profiling sweep"
assert report.warm_trace and report.simulated_jobs == 0, report.summary()
print(f"warm: {report.jobs} jobs replayed, 0 sweeps")
"""


#: Sharded smoke: one logical endpoint over two worker processes must serve
#: a small multi-tenant trace completely and merge it exactly.
_SMOKE_SHARDED = """
from repro.loadgen import default_registry
from repro.sharding import ShardedService
from repro.workloads.arrival import uniform_arrivals

registry = default_registry()
arrivals = uniform_arrivals(
    12, 1.0,
    workloads=("newsfeed", "document-qa", "chain-of-thought", "video-understanding"),
)
with ShardedService(shards=2, backend="process") as service:
    report = service.submit_trace(arrivals, registry=registry)
assert report.jobs == len(arrivals), report.summary()
assert sum(r["jobs"] for r in report.shards.values()) == report.jobs
# video-understanding hashes to shard 0, the other three to shard 1 —
# both worker processes must have served real work.
assert len(report.shards) == 2, report.shards
print(
    f"sharded: {report.jobs} jobs over {len(report.shards)} shard(s), "
    f"merged exactly"
)
"""


def run_sharded_smoke() -> int:
    """Two-worker sharded serving smoke (skipped, loudly, on one core:
    spawning parallel workers on a single CPU proves nothing and doubles the
    CI wall time)."""
    import os

    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(f"sharded smoke: skipped ({cpus} cpu available, need >= 2)")
        return 0
    print("sharded serving smoke (2 worker processes):")
    result = subprocess.run([sys.executable, "-c", _SMOKE_SHARDED], cwd=REPO_ROOT)
    if result.returncode != 0:
        print("sharded smoke failed")
    return result.returncode


def run_multiplex_smoke() -> int:
    """Multiplex loadtest smoke: the fidelity path behind the admission
    ladder, end to end through the CLI (``loadtest --mode multiplex
    --admit-rate ...``).  Overload at ~3x the rate budget must shed while
    every admitted job is served and accounted."""
    print("multiplex admission loadtest smoke:")
    command = [
        sys.executable,
        "-m",
        "repro",
        "loadtest",
        "--mode",
        "multiplex",
        "--rate",
        "0.9",
        "--horizon",
        "60",
        "--admit-rate",
        "0.3",
        "--admit-burst",
        "2",
        "--max-defer",
        "7",
        "--default-deadline",
        "14",
        "--seed",
        "3",
    ]
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        print("multiplex smoke failed")
    return result.returncode


def run_fabric_smoke() -> int:
    """Congested-fabric loadtest smoke: the network model end to end through
    the CLI — topology resolution, transfer phases, locality-aware charging,
    and the transfer columns in the report."""
    print("congested fabric loadtest smoke:")
    command = [
        sys.executable,
        "-m",
        "repro",
        "loadtest",
        "--fabric",
        "congested",
        "--workloads",
        "video-understanding",
        "--rate",
        "0.2",
        "--horizon",
        "30",
        "--seed",
        "3",
    ]
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        print("fabric smoke failed")
    return result.returncode


def run_restart_smoke() -> int:
    """Cold-then-warm restart smoke: two separate interpreter processes that
    share only the on-disk warm-state cache.  The second process must restore
    everything from disk — zero profiling sweeps, zero convergence probes —
    or the warm-restart path has regressed."""
    print("cold-then-warm restart smoke:")
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = str(Path(tmp) / "warm-cache")
        for label, script in (("cold", _SMOKE_COLD), ("warm", _SMOKE_WARM)):
            result = subprocess.run(
                [sys.executable, "-c", script, cache_dir], cwd=REPO_ROOT
            )
            if result.returncode != 0:
                print(f"restart smoke failed in the {label} generation")
                return result.returncode
    return 0


def run_smoke() -> int:
    """Execute every micro-benchmark body once, untimed.

    ``--benchmark-disable`` turns each ``benchmark(...)`` fixture call into a
    plain invocation, so CI proves the perf code paths still *run* on every
    change without the noise-sensitive timing, without appending a
    ``BENCH_<n>.json`` to the trajectory, and without the regression gate.
    The policy sweep rides along (non-gated) so CI exercises every
    registered control-plane bundle end to end, and the cold-then-warm
    restart smoke proves the persistent warm-state cache still delivers
    zero-sweep restarts across real process boundaries.
    """
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/test_microbenchmarks.py",
        "benchmarks/test_policy_sweep.py",
        "benchmarks/test_overload_admission.py",
        "benchmarks/test_multiplex_throughput.py",
        "benchmarks/test_fabric_throughput.py",
        "-q",
        "--benchmark-disable",
    ]
    returncode = subprocess.run(command, cwd=REPO_ROOT).returncode
    if returncode != 0:
        return returncode
    returncode = run_restart_smoke()
    if returncode != 0:
        return returncode
    returncode = run_sharded_smoke()
    if returncode != 0:
        return returncode
    returncode = run_multiplex_smoke()
    if returncode != 0:
        return returncode
    return run_fabric_smoke()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-gate", action="store_true", help="record without regression gating")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run benchmarks once without timing, recording, or gating (CI)",
    )
    args = parser.parse_args()

    if args.smoke:
        return run_smoke()

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        run_benchmarks(raw_path)
        raw = json.loads(raw_path.read_text())

    benchmarks = summarise(raw)
    records = existing_records()
    next_index = records[-1][0] + 1 if records else 1
    record = {
        "index": next_index,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get("python_version", "unknown"),
        "benchmarks": benchmarks,
    }
    output_path = REPO_ROOT / f"BENCH_{next_index}.json"
    output_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"recorded {len(benchmarks)} benchmarks -> {output_path.name}")

    if args.no_gate:
        return 0

    failures = (
        check_scaling(benchmarks)
        + check_multiplex(benchmarks)
        + check_fabric_overhead(benchmarks)
    )
    if not records:
        print("no previous BENCH_*.json; nothing to gate against")
    else:
        previous_path = records[-1][1]
        previous = json.loads(previous_path.read_text()).get("benchmarks", {})
        print(f"gating against {previous_path.name}:")
        failures += gate(benchmarks, previous, previous_path.name)
    if failures:
        print(f"performance regression in: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
