"""Quickstart: run a declarative Compound AI job on the Murakkab runtime.

This is the paper's Listing 2 in runnable form: describe *what* you want,
hand over the inputs, state a constraint — the runtime decomposes the job,
picks models/tools/hardware from their execution profiles, and schedules it
on the (simulated) cluster.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Job, MIN_COST, MurakkabRuntime


def main() -> None:
    # Define the job in natural language (paper Listing 2).
    description = "List objects shown/mentioned in the videos"
    # Optional: specify sub-tasks in the job.
    task_hints = [
        "Extract frames from each video",
        "Run speech-to-text on all scenes",
        "Detect objects in the frames",
    ]
    # Inputs: naming video files is enough — the synthetic workload generator
    # materialises them with the paper's scene/frame statistics.
    videos = ["cats.mov", "formula_1.mov"]

    job = Job(
        description=description,
        inputs=videos,
        tasks=task_hints,
        constraints=MIN_COST,
        quality_target=0.93,
    )

    runtime = MurakkabRuntime()
    result = runtime.submit(job)

    print("=== Murakkab quickstart ===")
    print(f"job:                {job.description!r}")
    print(f"constraint:         {job.constraint_set().describe()}")
    print()
    print("--- what the runtime decided ---")
    print(result.plan.describe())
    print()
    print("--- how it went ---")
    print(f"completion time:    {result.makespan_s:.1f} s (simulated)")
    print(f"GPU energy:         {result.energy_wh:.1f} Wh")
    print(f"cost:               {result.cost:.4f} $-units")
    print(f"estimated quality:  {result.quality:.2f}")
    print(f"tasks executed:     {len(result.task_results)}")
    print()
    print("--- answer ---")
    print(result.output.get("answer", "(no answer produced)"))


if __name__ == "__main__":
    main()
