"""Quickstart: declare a Compound AI workload as a spec and run it.

This is the paper's Listing 2 in runnable form, through the declarative
front-end: author a serializable :class:`WorkflowSpec` with the fluent
builder (*what* you want, not which models/hardware), hand it to the
:class:`MurakkabClient`, and the runtime decomposes the job, picks
models/tools/hardware from their execution profiles, and schedules it on
the (simulated) cluster.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MIN_COST, MurakkabClient, WorkflowBuilder


def main() -> None:
    # Define the workload declaratively: intent, stages, constraint, target.
    spec = (
        WorkflowBuilder("video-quickstart")
        .describe("List objects shown/mentioned in the videos")
        .inputs("videos", count=2)
        .stage("frame_extraction", "Extract frames from each video")
        .then("speech_to_text", "Run speech-to-text on all scenes")
        .stage("object_detection", "Detect objects in the frames",
               after=("frame_extraction",))
        .constraints(MIN_COST)
        .quality(0.93)
        .build()
    )

    # The spec is a value: print it, save it, ship it, replay it.
    print("=== Murakkab quickstart ===")
    print(spec.describe())
    print()

    with MurakkabClient() as client:
        handle = client.submit(spec, job_id="quickstart")

        print("--- what the runtime decided ---")
        print(handle.describe_plan())
        print()
        print("--- how it went ---")
        print(f"completion time:    {handle.makespan_s:.1f} s (simulated)")
        print(f"GPU energy:         {handle.energy_wh:.1f} Wh")
        print(f"cost:               {handle.cost:.4f} $-units")
        print(f"estimated quality:  {handle.quality:.2f}")
        print(f"tasks executed:     {len(handle.result.task_results)}")
        print()
        print("--- answer ---")
        print(handle.answer() or "(no answer produced)")
        print()
        print("--- the spec as shareable JSON ---")
        print(spec.to_json(indent=2))


if __name__ == "__main__":
    main()
