"""Multi-tenant multiplexing: Workflow A (video) + Workflow B (newsfeed).

The paper's Figure 2 motivates managing independent workflows jointly so
they can multiplex the same serving instances and idle capacity.  This
example submits the Video Understanding workflow and the "Generate social
media newsfeed for Alice" workflow to one shared cluster, and compares the
outcome with running them back to back on dedicated deployments.

Run with::

    python examples/newsfeed_multitenant.py
"""

from __future__ import annotations

from repro import MultiTenantRuntime, TenantSubmission
from repro.experiments.multitenant import run_multitenant
from repro.workflows.newsfeed import newsfeed_job
from repro.workflows.video_understanding import video_understanding_job


def main() -> None:
    print("=== One shared cluster, two tenants ===")
    runtime = MultiTenantRuntime()
    report = runtime.run_all(
        [
            TenantSubmission(arrival_time=0.0, job=video_understanding_job(job_id="workflow-a")),
            TenantSubmission(arrival_time=5.0, job=newsfeed_job(user="Alice", job_id="workflow-b")),
        ]
    )
    for job_id, result in report.job_results.items():
        print(f"{job_id}: {result.makespan_s:.1f} s, quality {result.quality:.2f}")
    print(f"batch completed in {report.batch_makespan_s:.1f} s "
          f"using {report.provisioned_gpus} provisioned GPUs")
    print(f"cluster GPU energy for the batch: {report.total_energy_wh:.1f} Wh")
    print()
    print("Newsfeed output:")
    print(" ", report.job_results["workflow-b"].output.get("text", "(none)"))

    print()
    print("=== Dedicated-serial vs multiplexed comparison ===")
    print(run_multitenant().render())


if __name__ == "__main__":
    main()
