"""Retrieval-augmented document question answering on the same runtime.

Shows that the declarative model generalises beyond the paper's video
workload: the same library and planner serve an embed -> index -> retrieve ->
answer pipeline over a synthetic document corpus, and the constraint still
steers model/hardware selection (compare MIN_COST against MAX_QUALITY).
The workload is a spec value, so swapping the constraint block is a
one-line override, not a new factory.

Run with::

    python examples/document_qa.py
"""

from __future__ import annotations

from repro import MAX_QUALITY, MIN_COST, MurakkabClient
from repro.agents.base import AgentInterface
from repro.workflows.document_qa import document_qa_spec


def run_one(client: MurakkabClient, constraint, quality_target: float, label: str) -> None:
    spec = document_qa_spec(
        question="Which documents discuss energy efficiency?",
        constraints=constraint,
        quality_target=quality_target,
        document_count=16,
    )
    handle = client.submit(spec, job_id=f"docqa-{label}")
    embedding = handle.result.plan.primary_assignment(AgentInterface.EMBEDDING)
    print(f"--- {label} ---")
    print(f"embedding model/hardware: {embedding.agent_name} on {embedding.config.describe()}")
    print(f"completion time:          {handle.makespan_s:.1f} s")
    print(f"GPU energy:               {handle.energy_wh:.2f} Wh")
    print(f"cost:                     {handle.cost:.4f} $-units")
    print(f"answer:                   {handle.answer()[:140]}")
    print()


def main() -> None:
    print("=== Document QA under different constraints ===\n")
    with MurakkabClient() as client:
        run_one(client, MIN_COST, quality_target=0.8, label="MIN_COST (quality floor 0.80)")
        run_one(client, MAX_QUALITY, quality_target=0.9, label="MAX_QUALITY (quality floor 0.90)")


if __name__ == "__main__":
    main()
