"""Retrieval-augmented document question answering on the same runtime.

Shows that the declarative model generalises beyond the paper's video
workload: the same library and planner serve an embed -> index -> retrieve ->
answer pipeline over a synthetic document corpus, and the constraint still
steers model/hardware selection (compare MIN_COST against MAX_QUALITY).

Run with::

    python examples/document_qa.py
"""

from __future__ import annotations

from repro import MAX_QUALITY, MIN_COST, MurakkabRuntime
from repro.agents.base import AgentInterface
from repro.workflows.document_qa import document_qa_job
from repro.workloads.documents import generate_documents


def run_one(constraint, quality_target: float, label: str) -> None:
    documents = generate_documents(count=16)
    job = document_qa_job(
        question="Which documents discuss energy efficiency?",
        documents=documents,
        constraints=constraint,
        quality_target=quality_target,
        job_id=f"docqa-{label}",
    )
    runtime = MurakkabRuntime()
    result = runtime.submit(job)
    embedding = result.plan.primary_assignment(AgentInterface.EMBEDDING)
    print(f"--- {label} ---")
    print(f"embedding model/hardware: {embedding.agent_name} on {embedding.config.describe()}")
    print(f"completion time:          {result.makespan_s:.1f} s")
    print(f"GPU energy:               {result.energy_wh:.2f} Wh")
    print(f"cost:                     {result.cost:.4f} $-units")
    print(f"answer:                   {result.output.get('answer', '')[:140]}")
    print()


def main() -> None:
    print("=== Document QA under different constraints ===\n")
    run_one(MIN_COST, quality_target=0.8, label="MIN_COST (quality floor 0.80)")
    run_one(MAX_QUALITY, quality_target=0.9, label="MAX_QUALITY (quality floor 0.90)")


if __name__ == "__main__":
    main()
