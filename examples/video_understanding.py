"""The paper's evaluation scenario end to end (Figure 3 / Table 2).

Runs the OmAgent-derived Video Understanding workflow four ways — the
imperative sequential baseline and Murakkab with Speech-to-Text on GPU,
on 64 CPU cores, and on GPU+CPU — then prints the Table-2 comparison, the
Figure-3-style execution traces, and the headline speedup / energy-efficiency
numbers next to the paper's.

Run with::

    python examples/video_understanding.py
"""

from __future__ import annotations

from repro.experiments.figure3 import run_figure3
from repro.experiments.headline import run_headline
from repro.experiments.table2 import run_table2


def main() -> None:
    print("Running the baseline and the three Murakkab STT configurations ...")
    table2 = run_table2()

    print()
    print("=== Table 2: energy and execution time per configuration ===")
    print(table2.render())
    print()
    print(f"Murakkab's own MIN_COST selection: {table2.autonomous_choice}")

    figure3 = run_figure3(table2=table2)
    print()
    print("=== Figure 3: execution traces and utilisation ===")
    print(figure3.render_traces(width=68))

    claims = run_headline(table2)
    print("=== Headline claims ===")
    print(claims.render())


if __name__ == "__main__":
    main()
