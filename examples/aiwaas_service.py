"""AI Workflows-as-a-Service and quality control (paper §5).

Demonstrates the paper's forward-looking discussion in runnable form:

1. a long-lived **AIWaaS** endpoint serves declarative jobs, keeps models
   warm between them, and transparently adopts a newly registered
   speech-to-text model without any change to the submitted jobs;
2. the **quality controller** analyses a cheap plan's quality cascade, finds
   the stage with the greatest end-to-end impact, proposes the cheapest
   single-stage upgrade that reaches a quality target, and places
   correctness checkpoints after the most load-bearing stages.

Run with::

    python examples/aiwaas_service.py
"""

from __future__ import annotations

from repro import AIWorkflowService, MIN_COST
from repro.agents.base import AgentInterface, ExecutionEstimate, HardwareConfig
from repro.agents.speech_to_text import _BaseSTT
from repro.core.constraints import ConstraintSet
from repro.core.decomposer import JobDecomposer
from repro.core.planner import ConfigurationPlanner
from repro.core.quality import cascade_quality
from repro.core.quality_control import QualityController, plan_checkpoints
from repro.workflows.video_understanding import PAPER_TASK_HINTS, video_understanding_job


class WhisperV4(_BaseSTT):
    """A hypothetical next-generation speech-to-text model."""

    name = "whisper-v4"
    quality = 0.99
    description = "Next-generation speech-to-text (faster and more accurate)."
    gpu_seconds_per_scene = 1.2
    cpu_seconds_per_scene = 5.0


def serve_jobs() -> AIWorkflowService:
    service = AIWorkflowService()
    print("=== AIWaaS: serving declarative jobs ===")
    first = service.submit(
        description="List objects shown/mentioned in the videos",
        inputs=["cats.mov", "formula_1.mov"],
        tasks=PAPER_TASK_HINTS,
        constraints=MIN_COST,
        quality_target=0.93,
        job_id="aiwaas-before",
    )
    stt = first.plan.primary_assignment(AgentInterface.SPEECH_TO_TEXT)
    print(f"job 1: {first.makespan_s:.1f}s using {stt.agent_name} on {stt.config.describe()}")

    print("registering a new model: whisper-v4 (no job changes needed)")
    service.register_agent(WhisperV4())

    second = service.submit(
        description="List objects shown/mentioned in the videos",
        inputs=["cats.mov", "formula_1.mov"],
        tasks=PAPER_TASK_HINTS,
        constraints=MIN_COST,
        quality_target=0.93,
        job_id="aiwaas-after",
    )
    stt = second.plan.primary_assignment(AgentInterface.SPEECH_TO_TEXT)
    print(f"job 2: {second.makespan_s:.1f}s using {stt.agent_name} on {stt.config.describe()}")
    print(f"jobs served: {service.stats.jobs_completed}, "
          f"total GPU energy {service.stats.total_energy_wh:.1f} Wh, "
          f"warm deployments: {', '.join(service.warm_agents())}")
    service.shutdown()
    return service


def quality_control(service: AIWorkflowService) -> None:
    print()
    print("=== Quality control (cost/quality trade-offs, checkpoints) ===")
    job = video_understanding_job(job_id="aiwaas-quality")
    graph, _ = JobDecomposer().decompose(job)
    planner = ConfigurationPlanner(service.runtime.profile_store, service.runtime.library)
    cheap_plan = planner.plan(graph, ConstraintSet((MIN_COST,), quality_floor=0.0))
    controller = QualityController(service.runtime.profile_store)

    current = cascade_quality(cheap_plan.stage_qualities())
    print(f"cheapest plan end-to-end quality: {current:.3f}")
    weakest = controller.most_impactful_interface(cheap_plan)
    print(f"stage with the greatest impact:   {weakest.value}")

    proposal = controller.propose_upgrade(cheap_plan, quality_target=min(1.0, current + 0.05))
    if proposal is not None:
        print(
            f"cheapest single-stage upgrade:    {proposal.interface.value} -> "
            f"{proposal.upgraded_agent} (quality {proposal.projected_workflow_quality:.3f}, "
            f"+{proposal.extra_cost_per_unit:.4f} $-units per work unit)"
        )

    print("correctness checkpoints:")
    for checkpoint in plan_checkpoints(graph, max_checkpoints=2):
        print(f"  after {checkpoint.after_interface.value}: {checkpoint.reason}")


def serve_a_trace() -> None:
    print()
    print("=== Trace-driven serving (batched admission) ===")
    from repro.workloads.arrival import bursty_arrivals

    service = AIWorkflowService()
    arrivals = bursty_arrivals(
        burst_rate_per_s=2.0,
        burst_duration_s=30.0,
        idle_duration_s=60.0,
        horizon_s=600.0,
        workloads=("newsfeed", "chain-of-thought"),
        seed=11,
    )
    report = service.submit_trace(arrivals)
    print(f"served {report.jobs} bursty arrivals "
          f"({report.simulated_jobs} simulated to steady state, "
          f"{report.replayed_jobs} accounted incrementally)")
    print(f"harness throughput: {report.wall_jobs_per_second:,.0f} jobs/s wall-clock; "
          f"mean queue delay {report.queue_delay_s.mean:.1f}s, "
          f"mean makespan {report.makespan_s.mean:.1f}s")
    service.shutdown()


def main() -> None:
    service = serve_jobs()
    quality_control(service)
    serve_a_trace()


if __name__ == "__main__":
    main()
