"""AI Workflows-as-a-Service and quality control (paper §5).

Demonstrates the paper's forward-looking discussion in runnable form,
through the stable client facade:

1. a long-lived **AIWaaS** endpoint (one :class:`MurakkabClient`) serves
   declarative workloads, keeps models warm between them, and transparently
   adopts a newly registered speech-to-text model without any change to the
   submitted specs;
2. the **quality controller** analyses a cheap plan's quality cascade, finds
   the stage with the greatest end-to-end impact, proposes the cheapest
   single-stage upgrade that reaches a quality target, and places
   correctness checkpoints after the most load-bearing stages;
3. a **trace** of bursty arrivals is served through the batched-admission
   path in one call.

Run with::

    python examples/aiwaas_service.py
"""

from __future__ import annotations

from repro import MurakkabClient
from repro.agents.base import AgentInterface
from repro.agents.speech_to_text import _BaseSTT
from repro.core.constraints import ConstraintSet, MIN_COST
from repro.core.decomposer import JobDecomposer
from repro.core.planner import ConfigurationPlanner
from repro.core.quality import cascade_quality
from repro.core.quality_control import QualityController, plan_checkpoints
from repro.workflows.video_understanding import (
    video_understanding_job,
    video_understanding_spec,
)


class WhisperV4(_BaseSTT):
    """A hypothetical next-generation speech-to-text model."""

    name = "whisper-v4"
    quality = 0.99
    description = "Next-generation speech-to-text (faster and more accurate)."
    gpu_seconds_per_scene = 1.2
    cpu_seconds_per_scene = 5.0


def serve_jobs(client: MurakkabClient) -> None:
    print("=== AIWaaS: serving declarative workloads ===")
    spec = video_understanding_spec()
    first = client.submit(spec, job_id="aiwaas-before")
    stt = first.result.plan.primary_assignment(AgentInterface.SPEECH_TO_TEXT)
    print(f"job 1: {first.makespan_s:.1f}s using {stt.agent_name} on {stt.config.describe()}")

    print("registering a new model: whisper-v4 (no spec changes needed)")
    client.register_agent(WhisperV4())

    second = client.submit(spec, job_id="aiwaas-after")
    stt = second.result.plan.primary_assignment(AgentInterface.SPEECH_TO_TEXT)
    print(f"job 2: {second.makespan_s:.1f}s using {stt.agent_name} on {stt.config.describe()}")
    print(f"jobs served: {client.stats.jobs_completed}, "
          f"total GPU energy {client.stats.total_energy_wh:.1f} Wh, "
          f"warm deployments: {', '.join(client.warm_agents())}")


def quality_control(client: MurakkabClient) -> None:
    print()
    print("=== Quality control (cost/quality trade-offs, checkpoints) ===")
    runtime = client.service.runtime
    job = video_understanding_job(job_id="aiwaas-quality")
    graph, _ = JobDecomposer().decompose(job)
    planner = ConfigurationPlanner(runtime.profile_store, runtime.library)
    cheap_plan = planner.plan(graph, ConstraintSet((MIN_COST,), quality_floor=0.0))
    controller = QualityController(runtime.profile_store)

    current = cascade_quality(cheap_plan.stage_qualities())
    print(f"cheapest plan end-to-end quality: {current:.3f}")
    weakest = controller.most_impactful_interface(cheap_plan)
    print(f"stage with the greatest impact:   {weakest.value}")

    proposal = controller.propose_upgrade(cheap_plan, quality_target=min(1.0, current + 0.05))
    if proposal is not None:
        print(
            f"cheapest single-stage upgrade:    {proposal.interface.value} -> "
            f"{proposal.upgraded_agent} (quality {proposal.projected_workflow_quality:.3f}, "
            f"+{proposal.extra_cost_per_unit:.4f} $-units per work unit)"
        )

    print("correctness checkpoints:")
    for checkpoint in plan_checkpoints(graph, max_checkpoints=2):
        print(f"  after {checkpoint.after_interface.value}: {checkpoint.reason}")


def serve_a_trace() -> None:
    print()
    print("=== Trace-driven serving (batched admission) ===")
    from repro.workloads.arrival import bursty_arrivals

    with MurakkabClient() as client:
        arrivals = bursty_arrivals(
            burst_rate_per_s=2.0,
            burst_duration_s=30.0,
            idle_duration_s=60.0,
            horizon_s=600.0,
            workloads=("newsfeed", "chain-of-thought"),
            seed=11,
        )
        trace = client.submit_trace(arrivals)
        report = trace.report
        print(f"served {trace.jobs} bursty arrivals "
              f"({report.simulated_jobs} simulated to steady state, "
              f"{report.replayed_jobs} accounted incrementally)")
        print(f"harness throughput: {trace.wall_jobs_per_second:,.0f} jobs/s wall-clock; "
              f"mean queue delay {report.queue_delay_s.mean:.1f}s, "
              f"mean makespan {report.makespan_s.mean:.1f}s")


def main() -> None:
    with MurakkabClient() as client:
        serve_jobs(client)
        quality_control(client)
    serve_a_trace()


if __name__ == "__main__":
    main()
