"""Explore the Table-1 levers and the constraint-driven trade-off space.

For the Video Understanding job, this example runs the same declarative job
under each supported constraint (MIN_COST, MIN_LATENCY, MIN_ENERGY,
MAX_QUALITY) and prints what the planner chose for Speech-to-Text and what
it cost in time, energy, and money — the fungibility the paper argues for.
It then prints the measured Table-1 lever directions.

Run with::

    python examples/constraint_tradeoffs.py
"""

from __future__ import annotations

from repro import MurakkabClient
from repro.agents.base import AgentInterface
from repro.core.constraints import MAX_QUALITY, MIN_COST, MIN_ENERGY, MIN_LATENCY
from repro.experiments.table1 import render_table1, run_table1
from repro.telemetry.reporting import render_table
from repro.workflows.video_understanding import video_understanding_spec

CONSTRAINTS = (
    ("MIN_COST", MIN_COST),
    ("MIN_LATENCY", MIN_LATENCY),
    ("MIN_ENERGY", MIN_ENERGY),
    ("MAX_QUALITY", MAX_QUALITY),
)


def main() -> None:
    rows = []
    for label, constraint in CONSTRAINTS:
        spec = video_understanding_spec(constraints=constraint, quality_target=0.93)
        # A fresh client per constraint: each choice is made cold, without
        # the warm-model bias a shared service would (correctly) apply.
        with MurakkabClient() as client:
            handle = client.submit(spec, job_id=f"tradeoff-{label.lower()}")
        stt = handle.result.plan.primary_assignment(AgentInterface.SPEECH_TO_TEXT)
        rows.append(
            [
                label,
                f"{stt.agent_name}@{stt.config.describe()}",
                f"{handle.makespan_s:.1f}",
                f"{handle.energy_wh:.1f}",
                f"{handle.cost:.4f}",
                f"{handle.quality:.2f}",
            ]
        )
    print("=== Constraint-driven configuration choices (Video Understanding) ===")
    print(
        render_table(
            ["Constraint", "Speech-to-Text choice", "Time (s)", "Energy (Wh)", "Cost", "Quality"],
            rows,
        )
    )
    print()
    print("=== Table 1: measured lever directions ===")
    print(render_table1(run_table1()))


if __name__ == "__main__":
    main()
